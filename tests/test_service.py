"""Tests for the online serving engine (repro.service) and its load generator.

Covers the satellite edge cases called out for the serving subsystem: pool
cache hit/miss accounting and LRU eviction, session TTL expiry, LRU swap-out
with transparent restore, and the snapshot → restore → identical
recommendation round-trip — plus the batched sampler and the fingerprint
keying everything.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.batch import BatchRejectionSampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.service import (
    EngineConfig,
    JsonSessionStore,
    LruCache,
    MemorySessionStore,
    RecommendationEngine,
    SamplePoolCache,
    SessionExpiredError,
    SessionNotFoundError,
    SqliteSessionStore,
)
from repro.simulation.traffic import TrafficSimulator, WorkloadSpec
from repro.topk.package_search import TopKPackageSearcher


class FakeClock:
    """A manually advanced monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def fast_elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=2,
        num_random=2,
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def make_engine(catalog, profile, clock=None, store=None, **config_overrides):
    config = EngineConfig(
        elicitation=fast_elicitation_config(), seed=1, **config_overrides
    )
    kwargs = {"store": store}
    if clock is not None:
        kwargs["clock"] = clock
    return RecommendationEngine(catalog, profile, config, **kwargs)


def presented_items(round_):
    return [p.items for p in round_.presented]


# ================================================================ fingerprint
class TestConstraintFingerprint:
    def test_empty_sets_share_a_fingerprint(self):
        a = ConstraintSet.empty(4)
        b = ConstraintSet.empty(4)
        assert a.fingerprint() == b.fingerprint()

    def test_row_order_is_canonicalised(self):
        d1 = np.array([[1.0, -0.5], [0.25, 0.75]])
        d2 = d1[::-1].copy()
        assert ConstraintSet(d1).fingerprint() == ConstraintSet(d2).fingerprint()

    def test_different_directions_differ(self):
        a = ConstraintSet(np.array([[1.0, 0.0]]))
        b = ConstraintSet(np.array([[0.0, 1.0]]))
        assert a.fingerprint() != b.fingerprint()

    def test_dimension_is_part_of_the_key(self):
        assert ConstraintSet.empty(3).fingerprint() != ConstraintSet.empty(4).fingerprint()

    def test_negative_zero_is_normalised(self):
        a = ConstraintSet(np.array([[0.0, 1.0]]))
        b = ConstraintSet(np.array([[-0.0, 1.0]]))
        assert a.fingerprint() == b.fingerprint()


# ==================================================================== caches
class TestLruCache:
    def test_hit_miss_and_eviction_accounting(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b": "a" was refreshed by the get above
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_disables_the_cache(self):
        cache = LruCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_sample_pool_cache_counts_saved_samples(self):
        cache = SamplePoolCache(maxsize=4)
        pool = SamplePool.unweighted(np.zeros((7, 2)))
        cache.put("k", pool)
        assert cache.get("k") is pool
        assert cache.samples_saved == 7

    def test_sample_pool_cache_rejects_non_pools(self):
        cache = SamplePoolCache(maxsize=4)
        with pytest.raises(TypeError):
            cache.put("k", [1, 2, 3])


# ============================================================== batch sampler
class TestBatchRejectionSampler:
    def test_pools_are_valid_and_sized(self):
        prior = GaussianMixture.default_prior(3, rng=0)
        sampler = BatchRejectionSampler(prior, rng=0, block_size=512)
        sets = [
            ConstraintSet.empty(3),
            ConstraintSet(np.array([[1.0, 0.0, 0.0]])),
            ConstraintSet(np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])),
        ]
        pools = sampler.sample_many(sets, [20, 30, 40])
        assert [p.size for p in pools] == [20, 30, 40]
        for constraints, pool in zip(sets, pools):
            assert constraints.valid_mask(pool.samples).all()

    def test_scalar_count_broadcasts(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        sampler = BatchRejectionSampler(prior, rng=0, block_size=256)
        pools = sampler.sample_many([ConstraintSet.empty(2)] * 3, 10)
        assert [p.size for p in pools] == [10, 10, 10]

    def test_single_sample_api_matches_abc(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        sampler = BatchRejectionSampler(prior, rng=0, block_size=256)
        pool = sampler.sample(15, ConstraintSet.empty(2))
        assert pool.size == 15

    def test_mcmc_fallback_fills_tiny_regions(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        sampler = BatchRejectionSampler(prior, rng=0, block_size=64, max_blocks=1)
        # A thin wedge around +x the single small block will surely underfill.
        tight = ConstraintSet(
            np.array([[1.0, 0.0], [0.02, -1.0], [0.02, 1.0]])
        )
        pool = sampler.sample(25, tight)
        assert pool.size == 25
        assert tight.valid_mask(pool.samples).all()


# ============================================================== engine basics
class TestEngineBasics:
    def test_request_response_loop(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session()
        round_ = engine.recommend(session_id)
        assert len(round_.recommended) == 2
        added = engine.feedback(session_id, 0)
        assert added >= 0
        assert engine.close(session_id)
        with pytest.raises(SessionNotFoundError):
            engine.recommend(session_id)

    def test_feedback_by_index_matches_feedback_by_package(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        a = engine.create_session(seed=3)
        b = engine.create_session(seed=3)
        engine.recommend(a)
        round_b = engine.recommend(b)
        engine.feedback(a, 1)
        engine.feedback(b, round_b.presented[1])
        assert presented_items(engine.recommend(a)) == presented_items(
            engine.recommend(b)
        )

    def test_unknown_session_raises(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        with pytest.raises(SessionNotFoundError):
            engine.recommend("nope")

    def test_duplicate_session_id_rejected(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        engine.create_session(session_id="u1")
        with pytest.raises(ValueError):
            engine.create_session(session_id="u1")

    def test_feedback_requires_a_served_round(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session()
        with pytest.raises(ValueError):
            engine.feedback(session_id, 0)


# ======================================================== shared pool caching
class TestPoolSharing:
    def test_identical_prefix_sessions_share_one_pool(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        a = engine.create_session(seed=7)
        b = engine.create_session(seed=7)
        engine.recommend(a)
        stats_after_first = engine.stats()
        assert stats_after_first.pool_cache["misses"] == 1
        engine.recommend(b)
        stats = engine.stats()
        assert stats.pool_cache["hits"] >= 1
        assert stats.pool_cache["misses"] == 1  # second session never sampled
        assert stats.pools_sampled == 1

    def test_pool_cache_eviction_is_bounded(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile, pool_cache_size=1)
        a = engine.create_session(seed=1)
        engine.recommend(a)
        engine.feedback(a, 0)
        engine.recommend(a)  # new fingerprint evicts the empty-prefix pool
        stats = engine.stats()
        assert stats.pool_cache["evictions"] >= 1
        assert len(engine.pool_repository) == 1

    def test_maintenance_reuses_surviving_samples_on_miss(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session(seed=2)
        engine.recommend(session_id)
        engine.feedback(session_id, 0)
        engine.recommend(session_id)
        stats = engine.stats()
        assert stats.pools_maintained >= 1
        # The maintained pool must satisfy the updated constraint set.
        entry = engine.sessions.acquire(session_id)
        pool = entry.recommender.sample_pool()
        constraints = entry.recommender.constraints
        assert constraints.valid_mask(pool.samples).all()

    def test_disabled_sharing_keeps_sessions_independent(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(
            serving_catalog,
            serving_profile,
            pool_cache_size=0,
            topk_cache_size=0,
            use_batch_sampler=False,
        )
        a = engine.create_session(seed=7)
        b = engine.create_session(seed=7)
        ra = engine.recommend(a)
        rb = engine.recommend(b)
        # Same seeds still mean identical behaviour — just without sharing.
        assert presented_items(ra) == presented_items(rb)
        stats = engine.stats()
        assert stats.pool_cache["hits"] == 0
        assert stats.pool_cache["misses"] == 0
        assert stats.pool_cache["puts"] == 0

    def test_batched_recommend_many_matches_serial(
        self, serving_catalog, serving_profile
    ):
        serial = make_engine(serving_catalog, serving_profile)
        batched = make_engine(serving_catalog, serving_profile)
        ids_serial = [serial.create_session(seed=4) for _ in range(3)]
        ids_batched = [batched.create_session(seed=4) for _ in range(3)]
        serial_rounds = [serial.recommend(sid) for sid in ids_serial]
        batched_rounds = batched.recommend_many(ids_batched)
        assert [presented_items(r) for r in serial_rounds] == [
            presented_items(r) for r in batched_rounds
        ]


# ========================================== across-session search batching
class TestAcrossSessionSearchBatching:
    """recommend_many's one-walk top-k prefetch over every missing pool."""

    def _exact_engine(self, catalog, profile, **engine_overrides):
        """An engine with *exact* search settings: a finite beam pools its
        budget over the batch, which is the one legitimate divergence from
        per-pool search, so equivalence tests run beam- and cap-free."""
        config = EngineConfig(
            elicitation=fast_elicitation_config(
                search_beam_width=None, search_items_cap=None
            ),
            seed=1,
            **engine_overrides,
        )
        return RecommendationEngine(catalog, profile, config)

    def _heterogeneous_round(self, engine, num_sessions=5):
        """Sessions with distinct feedback prefixes, ready for round 2."""
        ids = [engine.create_session(seed=100 + i) for i in range(num_sessions)]
        rounds = engine.recommend_many(ids)
        for index, (session_id, round_) in enumerate(zip(ids, rounds)):
            engine.feedback(session_id, index % len(round_.presented))
        return ids

    def test_prefetched_ranked_lists_match_per_session_recompute(
        self, serving_catalog, serving_profile
    ):
        """Exactness: the shared walk's ranked list per pool must equal what
        the session would compute for itself on the same pool."""
        engine = self._exact_engine(serving_catalog, serving_profile)
        ids = self._heterogeneous_round(engine)
        rounds = engine.recommend_many(ids)
        assert engine.stats().topk_batched_pools >= 2
        for session_id, round_ in zip(ids, rounds):
            recommender = engine.sessions.acquire(session_id).recommender
            expected = recommender.current_top_k()
            assert [p.items for p in round_.recommended] == [
                p.items for p in expected
            ]

    def test_across_session_batching_preserves_rounds(
        self, serving_catalog, serving_profile
    ):
        """The flag only changes *how* searches run, not what is served."""
        on = self._exact_engine(serving_catalog, serving_profile)
        off = self._exact_engine(
            serving_catalog, serving_profile, batch_search_across_sessions=False
        )
        ids_on = self._heterogeneous_round(on)
        ids_off = self._heterogeneous_round(off)
        rounds_on = on.recommend_many(ids_on)
        rounds_off = off.recommend_many(ids_off)
        assert [presented_items(r) for r in rounds_on] == [
            presented_items(r) for r in rounds_off
        ]
        assert on.stats().topk_batched_pools >= 2
        assert off.stats().topk_batched_pools == 0

    def test_topk_prefetch_counts_one_honest_miss_per_pool(
        self, serving_catalog, serving_profile
    ):
        """A prefetch-computed ranked list is a miss for the session that
        caused it; only genuinely shared fetches count as hits."""
        engine = make_engine(serving_catalog, serving_profile)
        ids = [engine.create_session(seed=4) for _ in range(3)]
        engine.recommend_many(ids)
        stats = engine.stats()
        assert stats.topk_batched_pools == 1  # one shared empty-prefix pool
        assert stats.topk_cache["misses"] == 1
        assert stats.topk_cache["hits"] == 2

    def test_prefetch_skips_pools_with_cached_topk(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        ids = [engine.create_session(seed=4) for _ in range(3)]
        engine.recommend_many(ids)
        batched_before = engine.stats().topk_batched_pools
        more = [engine.create_session(seed=4) for _ in range(2)]
        engine.recommend_many(more)  # same empty-prefix pool: already cached
        assert engine.stats().topk_batched_pools == batched_before

    def test_disabled_topk_cache_disables_prefetch(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile, topk_cache_size=0)
        ids = self._heterogeneous_round(engine)
        rounds = engine.recommend_many(ids)
        assert len(rounds) == len(ids)
        assert engine.stats().topk_batched_pools == 0

    def test_prefetch_respects_a_tiny_topk_cache(
        self, serving_catalog, serving_profile
    ):
        """More distinct pools than cache slots: the prefetch must not search
        pools whose results would be evicted before their sessions read them,
        and the excess sessions still get correct rounds serially."""
        engine = self._exact_engine(
            serving_catalog, serving_profile, topk_cache_size=2
        )
        ids = self._heterogeneous_round(engine)  # 5 distinct pools
        batched_before = engine.stats().topk_batched_pools
        rounds = engine.recommend_many(ids)
        assert len(rounds) == len(ids)
        # At most cache-capacity pools joined this batch's shared walk.
        assert engine.stats().topk_batched_pools - batched_before <= 2
        for session_id, round_ in zip(ids, rounds):
            recommender = engine.sessions.acquire(session_id).recommender
            assert [p.items for p in round_.recommended] == [
                p.items for p in recommender.current_top_k()
            ]


# ========================================================== session lifecycle
class TestSessionLifecycle:
    def test_ttl_expiry(self, serving_catalog, serving_profile):
        clock = FakeClock()
        engine = make_engine(
            serving_catalog, serving_profile, clock=clock, session_ttl_seconds=10.0
        )
        session_id = engine.create_session()
        engine.recommend(session_id)
        clock.advance(5.0)
        engine.recommend(session_id)  # touch keeps it alive
        clock.advance(10.5)
        with pytest.raises(SessionExpiredError):
            engine.recommend(session_id)
        assert engine.stats().sessions_expired == 1

    def test_ttl_sweep_expires_idle_sessions(self, serving_catalog, serving_profile):
        clock = FakeClock()
        engine = make_engine(
            serving_catalog, serving_profile, clock=clock, session_ttl_seconds=10.0
        )
        engine.create_session(session_id="idle")
        clock.advance(20.0)
        engine.create_session(session_id="fresh")  # creation sweeps the table
        assert engine.stats().sessions_expired == 1
        assert engine.stats().sessions_active == 1

    def test_lru_swap_out_and_transparent_restore(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = JsonSessionStore(str(tmp_path / "sessions"))
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=1
        )
        a = engine.create_session(seed=5)
        engine.recommend(a)
        engine.feedback(a, 0)
        expected_next = engine.snapshot(a)  # state we must come back to
        engine.create_session(seed=6)  # evicts a to the store
        assert engine.stats().sessions_swapped_out >= 1
        assert a in store.list_ids()
        ra2 = engine.recommend(a)  # transparently restored (evicting b)
        assert engine.stats().sessions_restored >= 1
        # The restored session continues from its exact pre-eviction state.
        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(expected_next)
        assert presented_items(ra2) == presented_items(fresh.recommend(a))
        assert ra2.recommended  # sanity: non-empty rounds
        engine.close(a)
        assert a not in store.list_ids()

    def test_lru_without_store_drops_sessions(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile, max_active_sessions=1)
        a = engine.create_session()
        engine.create_session()
        with pytest.raises(SessionNotFoundError):
            engine.recommend(a)


# ========================================================== snapshot/restore
class TestSnapshotRestore:
    def run_rounds(self, engine, session_id, rounds=2):
        for _ in range(rounds):
            engine.recommend(session_id)
            engine.feedback(session_id, 0)

    def test_round_trip_identical_recommendation(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session(seed=9)
        self.run_rounds(engine, session_id)
        snapshot = engine.snapshot(session_id)
        json.dumps(snapshot)  # payload must be pure JSON
        original_round = engine.recommend(session_id)

        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(snapshot)
        restored_round = fresh.recommend(session_id)
        assert presented_items(original_round) == presented_items(restored_round)

    def test_restored_session_keeps_counters(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session(seed=9)
        self.run_rounds(engine, session_id, rounds=3)
        snapshot = engine.snapshot(session_id)
        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(snapshot)
        entry = fresh.sessions.acquire(session_id)
        assert entry.recommender.rounds_presented == 3
        assert entry.recommender.clicks_received == 3
        assert entry.recommender.num_feedback_preferences > 0

    def test_restore_rejects_unknown_versions(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session()
        snapshot = engine.snapshot(session_id)
        snapshot["version"] = 99
        with pytest.raises(ValueError):
            engine.restore(snapshot)

    def test_restore_refuses_to_clobber_by_default(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        session_id = engine.create_session()
        snapshot = engine.snapshot(session_id)
        with pytest.raises(ValueError):
            engine.restore(snapshot)
        engine.restore(snapshot, replace_existing=True)
        engine.recommend(session_id)


# ================================================================== stores
class TestSessionStores:
    PAYLOAD = {"version": 1, "value": [1, 2, 3]}

    @pytest.mark.parametrize("backend", ["memory", "json", "sqlite"])
    def test_round_trip(self, backend, tmp_path):
        store = {
            "memory": lambda: MemorySessionStore(),
            "json": lambda: JsonSessionStore(str(tmp_path / "j")),
            "sqlite": lambda: SqliteSessionStore(str(tmp_path / "s.sqlite")),
        }[backend]()
        assert store.load("x") is None
        store.save("x", self.PAYLOAD)
        assert store.load("x") == self.PAYLOAD
        assert store.list_ids() == ["x"]
        assert "x" in store
        assert store.delete("x")
        assert not store.delete("x")
        assert store.load("x") is None

    @pytest.mark.parametrize("backend", ["memory", "json", "sqlite"])
    def test_pool_table_round_trip(self, backend, tmp_path):
        store = {
            "memory": lambda: MemorySessionStore(),
            "json": lambda: JsonSessionStore(str(tmp_path / "j")),
            "sqlite": lambda: SqliteSessionStore(str(tmp_path / "s.sqlite")),
        }[backend]()
        payload = {"samples": [[0.1, 0.2]], "weights": [1.0]}
        assert store.load_pool("n40:abc") is None
        store.save_pool("n40:abc", payload)
        assert store.load_pool("n40:abc") == payload
        assert store.list_pool_keys() == ["n40:abc"]
        # Pool payloads live in their own namespace, apart from sessions.
        assert store.list_ids() == []
        assert store.total_bytes() > 0
        assert store.delete_pool("n40:abc")
        assert not store.delete_pool("n40:abc")

    def test_total_bytes_counts_sessions_and_pools(self, tmp_path):
        store = JsonSessionStore(str(tmp_path / "j"))
        store.save("s", {"n": 1})
        sessions_only = store.total_bytes()
        store.save_pool("k", {"samples": [[0.0] * 8] * 8, "weights": [1.0] * 8})
        assert store.total_bytes() > sessions_only

    def test_sqlite_uses_wal_mode(self, tmp_path):
        store = SqliteSessionStore(str(tmp_path / "wal.sqlite"))
        mode = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"

    def test_json_store_overwrites_atomically(self, tmp_path):
        store = JsonSessionStore(str(tmp_path / "j"))
        store.save("x", {"n": 1})
        store.save("x", {"n": 2})
        assert store.load("x") == {"n": 2}
        assert store.list_ids() == ["x"]


# =========================================================== search_many dedup
class TestSearchMany:
    def test_duplicates_share_one_search(self, serving_catalog, serving_profile):
        from repro.core.packages import PackageEvaluator

        evaluator = PackageEvaluator(serving_catalog, serving_profile, 2)
        searcher = TopKPackageSearcher(evaluator, beam_width=60, max_items_accessed=25)
        weights = np.array([[0.5, 0.2, -0.1], [0.5, 0.2, -0.1], [0.1, 0.9, 0.3]])
        results = searcher.search_many(weights, 2)
        assert len(results) == 3
        assert results[0] is results[1]  # deduplicated rows share the result
        individual = searcher.search(weights[2], 2)
        assert [p.items for p in results[2].packages] == [
            p.items for p in individual.packages
        ]

    def test_empty_matrix_gives_no_results(self, serving_catalog, serving_profile):
        from repro.core.packages import PackageEvaluator

        evaluator = PackageEvaluator(serving_catalog, serving_profile, 2)
        searcher = TopKPackageSearcher(evaluator)
        assert searcher.search_many(np.zeros((0, 3)), 2) == []


# ============================================================ traffic harness
class TestTrafficSimulator:
    def test_identical_prefix_load_reports_cache_wins(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        report = TrafficSimulator(
            engine, WorkloadSpec(num_sessions=6, rounds=2, identical_prefix=True)
        ).run()
        assert report.rounds_served == 12
        assert report.feedback_events == 12
        assert report.sessions_per_sec > 0
        assert report.engine_stats["pool_cache"]["hit_rate"] > 0.5
        text = report.format("identical")
        assert "sessions/sec" in text and "p50" in text

    def test_heterogeneous_load_diverges(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        report = TrafficSimulator(
            engine,
            WorkloadSpec(num_sessions=4, rounds=2, identical_prefix=False),
        ).run()
        assert report.rounds_served == 8
        # After round one the prefixes split, so pools get maintained per user.
        assert report.engine_stats["pools_maintained"] >= 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_sessions=0)
        with pytest.raises(ValueError):
            WorkloadSpec(rounds=0)


# ==================================================== review regression tests
class TestReviewRegressions:
    def test_no_wasted_prefetch_when_pool_cache_disabled(
        self, serving_catalog, serving_profile
    ):
        """recommend_many must not batch-build pools it cannot cache."""
        engine = make_engine(serving_catalog, serving_profile, pool_cache_size=0)
        ids = [engine.create_session(seed=4) for _ in range(4)]
        engine.recommend_many(ids)
        # One build per session's own provider; no discarded prefetch batch.
        stats = engine.stats()
        assert stats.pools_sampled + stats.pools_maintained == 4

    def test_topk_cache_does_not_survive_pool_rebuild(
        self, serving_catalog, serving_profile
    ):
        """A pool evicted and rebuilt must not be served stale top-k lists."""
        engine = make_engine(serving_catalog, serving_profile, pool_cache_size=1)
        a = engine.create_session(seed=5)
        engine.recommend(a)                 # empty-prefix pool + top-k cached
        engine.feedback(a, 0)
        engine.recommend(a)                 # new fingerprint evicts the old pool
        b = engine.create_session(seed=5)
        round_b = engine.recommend(b)       # empty-prefix pool rebuilt (new build)
        stats = engine.stats()
        assert stats.topk_cache["hits"] == 0  # stale entry was never served
        # The served list matches the session's *actual* (rebuilt) pool.
        entry_b = engine.sessions.acquire(b)
        recomputed = entry_b.recommender.current_top_k()
        assert [p.items for p in round_b.recommended] == [
            p.items for p in recomputed
        ]

    def test_json_store_distinct_ids_never_collide(self, tmp_path):
        store = JsonSessionStore(str(tmp_path / "j"))
        store.save("a/b", {"n": 1})
        store.save("a_b", {"n": 2})
        assert store.load("a/b") == {"n": 1}
        assert store.load("a_b") == {"n": 2}
        assert store.list_ids() == ["a/b", "a_b"]

    def test_expired_swapped_out_session_id_is_reusable(
        self, serving_catalog, serving_profile, tmp_path
    ):
        clock = FakeClock()
        store = JsonSessionStore(str(tmp_path / "sessions"))
        engine = make_engine(
            serving_catalog,
            serving_profile,
            clock=clock,
            store=store,
            max_active_sessions=1,
            session_ttl_seconds=10.0,
        )
        engine.create_session(session_id="u1")
        engine.create_session(session_id="u2")  # swaps u1 out to the store
        assert "u1" in store.list_ids()
        clock.advance(11.0)
        engine.create_session(session_id="u1")  # expired snapshot reclaimed
        assert engine.stats().sessions_expired >= 1

    def test_batched_serve_survives_capacity_eviction_mid_batch(
        self, serving_catalog, serving_profile, tmp_path
    ):
        """Acquiring a later session must not swap out an earlier one before
        its round is served (the served round would be lost to a pre-serve
        snapshot)."""
        store = JsonSessionStore(str(tmp_path / "sessions"))
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=2
        )
        ids = [engine.create_session(seed=4) for _ in range(3)]
        rounds = engine.recommend_many(ids)
        assert len(rounds) == 3
        # Feedback on every batched session works: each served round was
        # preserved, including for whichever entry got swapped out afterwards.
        for session_id in ids:
            engine.feedback(session_id, 0)

    def test_prefetch_builds_are_not_counted_as_cache_hits(
        self, serving_catalog, serving_profile
    ):
        """The builder session's first fetch of its freshly prefetched pool
        is the miss that caused the build, not a cache win."""
        engine = make_engine(serving_catalog, serving_profile)
        ids = [engine.create_session(seed=4) for _ in range(3)]
        engine.recommend_many(ids)
        stats = engine.stats()
        assert stats.pool_cache["misses"] == 1
        assert stats.pool_cache["hits"] == 2  # only the genuinely shared fetches

    def test_serial_sampler_honours_configured_kind(
        self, serving_catalog, serving_profile
    ):
        """With the batch sampler off but the cache on, engine-level pool
        builds must use the configured elicitation sampler."""
        config = EngineConfig(
            elicitation=fast_elicitation_config(sampler="rejection"),
            seed=1,
            use_batch_sampler=False,
        )
        engine = RecommendationEngine(serving_catalog, serving_profile, config)
        session_id = engine.create_session(seed=2)
        engine.recommend(session_id)
        pool = engine.sessions.acquire(session_id).recommender.sample_pool()
        assert pool.stats["sampler"] == "RS"


# ====================================== snapshot compaction + engine restarts
class TestSnapshotCompaction:
    """Reference (pool-less) snapshots resolved against the pool repository."""

    def _run_shared_sessions(self, engine, num_sessions=4):
        ids = [engine.create_session(seed=7) for _ in range(num_sessions)]
        engine.recommend_many(ids)
        for sid in ids:
            engine.feedback(sid, 0)
        engine.recommend_many(ids)
        return ids

    def _sharded_engine(self, catalog, profile, store, **overrides):
        return make_engine(
            catalog, profile, store=store, pool_shards=4, **overrides
        )

    def test_reference_snapshot_omits_the_pool_payload(
        self, serving_catalog, serving_profile
    ):
        store = MemorySessionStore()
        engine = self._sharded_engine(serving_catalog, serving_profile, store)
        (sid,) = self._run_shared_sessions(engine, num_sessions=1)
        compact = engine.snapshot(sid, embed_pool=False)
        embedded = engine.snapshot(sid)
        assert "samples" not in compact["pool"]
        assert compact["pool"]["key"] == embedded["pool"]["key"]
        # The pool payload went to the store's pool table, exactly once,
        # under a content-addressed key (fingerprint key + digest).
        expected_store_key = (
            f"{compact['pool']['key']}#{compact['pool']['digest']}"
        )
        assert store.list_pool_keys() == [expected_store_key]
        assert len(json.dumps(compact)) < len(json.dumps(embedded))

    def test_sessions_sharing_a_pool_persist_it_once(
        self, serving_catalog, serving_profile
    ):
        store = MemorySessionStore()
        engine = self._sharded_engine(serving_catalog, serving_profile, store)
        ids = self._run_shared_sessions(engine)
        for sid in ids:
            store.save(sid, engine.snapshot(sid, embed_pool=False))
        assert len(store.list_pool_keys()) == 1  # identical prefixes: one pool
        embedded_bytes = sum(
            len(json.dumps(engine.snapshot(sid))) for sid in ids
        )
        assert store.total_bytes() < embedded_bytes

    def test_restart_resolves_pools_by_fingerprint_without_resampling(
        self, serving_catalog, serving_profile
    ):
        """Persist with a ShardedPoolRepository, restart the engine, restore:
        pools come back by fingerprint from the store's pool table."""
        store = MemorySessionStore()
        engine = self._sharded_engine(serving_catalog, serving_profile, store)
        ids = self._run_shared_sessions(engine)
        for sid in ids:
            store.save(sid, engine.snapshot(sid, embed_pool=False))
        expected = [presented_items(engine.recommend(sid)) for sid in ids]

        restarted = self._sharded_engine(serving_catalog, serving_profile, store)
        got = [presented_items(restarted.recommend(sid)) for sid in ids]
        assert got == expected
        stats = restarted.stats()
        assert stats.sessions_restored == len(ids)
        assert stats.pools_sampled == 0  # resolved, never resampled
        assert stats.pools_maintained == 0

    def test_missing_pool_payload_resamples_by_key(
        self, serving_catalog, serving_profile
    ):
        """Resolution falls back to a deterministic refill only when both the
        repository and the store's pool table miss."""
        store = MemorySessionStore()
        engine = self._sharded_engine(serving_catalog, serving_profile, store)
        ids = self._run_shared_sessions(engine)
        for sid in ids:
            store.save(sid, engine.snapshot(sid, embed_pool=False))
        for key in store.list_pool_keys():
            store.delete_pool(key)

        restarted = self._sharded_engine(serving_catalog, serving_profile, store)
        rounds = [restarted.recommend(sid) for sid in ids]
        assert all(round_.recommended for round_ in rounds)
        stats = restarted.stats()
        # One shared fingerprint: resampled once by the first restore's
        # provider; the later restores resolve it from the repository.
        assert stats.pools_sampled == 1
        assert stats.pool_repository["fills"] == 1

    def test_swap_out_uses_reference_snapshots(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = JsonSessionStore(str(tmp_path / "sessions"))
        engine = self._sharded_engine(
            serving_catalog, serving_profile, store, max_active_sessions=1
        )
        a = engine.create_session(seed=5)
        engine.recommend(a)
        engine.create_session(seed=6)  # evicts a
        payload = store.load(a)
        assert "samples" not in payload["pool"]
        assert any(
            key.startswith(payload["pool"]["key"])
            for key in store.list_pool_keys()
        )

    def test_restore_rejects_a_different_build_under_the_same_fingerprint(
        self, serving_catalog, serving_profile
    ):
        """Review regression: a maintained pool's fingerprint can later hold
        a different (fresh-filled) build; restore must detect the digest
        mismatch and come back from the store's exact payload, not continue
        the session's saved RNG state against the wrong pool."""
        store = MemorySessionStore()
        engine = self._sharded_engine(serving_catalog, serving_profile, store)
        sid = engine.create_session(seed=7)
        engine.recommend(sid)
        engine.feedback(sid, 0)
        engine.recommend(sid)  # maintained pool: content depends on history
        store.save(sid, engine.snapshot(sid, embed_pool=False))
        expected = presented_items(engine.recommend(sid))

        restarted = self._sharded_engine(serving_catalog, serving_profile, store)
        payload = store.load(sid)
        key = payload["pool"]["key"]
        # Simulate eviction + key-deterministic refill before the restore:
        # the repository now holds a *different* build under the same key.
        count = int(key.split(":")[0][1:])
        entry = engine.sessions.acquire(sid)
        constraints = entry.recommender.constraints
        fresh = restarted._stamp_pool(
            restarted.pool_repository.fill_one(key, constraints, count)
        )
        restarted.pool_repository.put(key, fresh)
        assert restarted._pool_digest(fresh) != payload["pool"]["digest"]

        assert presented_items(restarted.recommend(sid)) == expected
        # The mismatched repository build was left in place for its sharers.
        assert restarted.pool_repository.peek(key) is fresh

    def test_legacy_v1_snapshot_restores(self, serving_catalog, serving_profile):
        engine = make_engine(serving_catalog, serving_profile)
        sid = engine.create_session(seed=9)
        engine.recommend(sid)
        snapshot = engine.snapshot(sid)
        snapshot["version"] = 1  # exactly the v1 shape: embedded pool
        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(snapshot)
        assert presented_items(engine.recommend(sid)) == presented_items(
            fresh.recommend(sid)
        )


# ===================================================== dirty-flag swap-outs
class CountingStore(MemorySessionStore):
    """A store that counts snapshot writes (the satellite's regression probe)."""

    def __init__(self) -> None:
        super().__init__()
        self.saves = 0

    def save(self, session_id, payload):
        self.saves += 1
        super().save(session_id, payload)


class TestDirtySwapOut:
    def test_unchanged_sessions_skip_the_store_write(
        self, serving_catalog, serving_profile
    ):
        """LRU swap-out must not re-serialise a session that has not served a
        round or received feedback since it was restored."""
        store = CountingStore()
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=1
        )
        a = engine.create_session(seed=5)
        engine.recommend(a)
        engine.feedback(a, 0)
        engine.create_session(seed=6)  # evicts dirty a -> write 1
        assert store.saves == 1
        engine.snapshot(a)  # restores a (clean) and evicts the other session
        saves_after_restore = store.saves
        engine.create_session(seed=7)  # evicts clean a -> write skipped
        assert store.saves == saves_after_restore
        assert engine.stats().swap_writes_skipped == 1

    def test_served_rounds_dirty_the_entry_again(
        self, serving_catalog, serving_profile
    ):
        store = CountingStore()
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=1
        )
        a = engine.create_session(seed=5)
        engine.recommend(a)
        engine.create_session(seed=6)  # write 1 (a dirty)
        engine.recommend(a)  # restore + serve: dirty again (evicts the other)
        before = store.saves
        engine.create_session(seed=7)  # evicts a: must write
        assert store.saves == before + 1
        assert engine.stats().swap_writes_skipped == 0

    def test_skipped_write_still_restores_correctly(
        self, serving_catalog, serving_profile
    ):
        store = CountingStore()
        engine = make_engine(
            serving_catalog, serving_profile, store=store, max_active_sessions=1
        )
        a = engine.create_session(seed=5)
        engine.recommend(a)
        engine.feedback(a, 0)
        engine.create_session(seed=6)  # write (dirty)
        expected = engine.snapshot(a)  # restore a, clean
        engine.create_session(seed=7)  # skip write for clean a
        ra = engine.recommend(a)  # restore again from the original write
        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(expected)
        assert presented_items(ra) == presented_items(fresh.recommend(a))


# ======================================================== pool-table GC sweep
class TestPoolTableGc:
    def _store(self, backend, tmp_path):
        return {
            "memory": lambda: MemorySessionStore(),
            "json": lambda: JsonSessionStore(str(tmp_path / "gc-json")),
            "sqlite": lambda: SqliteSessionStore(str(tmp_path / "gc.sqlite")),
        }[backend]()

    @pytest.mark.parametrize("backend", ["memory", "json", "sqlite"])
    def test_sweeps_unreferenced_entries_only(self, backend, tmp_path):
        store = self._store(backend, tmp_path)
        payload = {"samples": [[0.1, 0.2]], "weights": [1.0]}
        store.save_pool("nA#d1", payload)
        store.save_pool("nA#d2", payload)
        store.save_pool("nB#d3", payload)
        collected = store.gc_pools(live_refs=["nA#d2"])
        assert collected == 2
        assert store.list_pool_keys() == ["nA#d2"]
        # Sweeping again collects nothing: the mark set still covers it.
        assert store.gc_pools(live_refs=["nA#d2"]) == 0

    @pytest.mark.parametrize("backend", ["memory", "json", "sqlite"])
    def test_default_mark_set_is_derived_from_stored_snapshots(
        self, backend, tmp_path
    ):
        store = self._store(backend, tmp_path)
        payload = {"samples": [[0.1]], "weights": [1.0]}
        store.save_pool("nK#live", payload)
        store.save_pool("nK#dead", payload)
        store.save(
            "sess-1",
            {"version": 2, "pool": {"key": "nK", "digest": "live"}},
        )
        # An embedded snapshot references nothing from the pool table.
        store.save(
            "sess-2",
            {"version": 2, "pool": {"key": "nK", "samples": [[0.1]], "weights": [1.0]}},
        )
        assert store.gc_pools() == 1
        assert store.list_pool_keys() == ["nK#live"]

    def test_pool_ref_of_handles_malformed_payloads(self):
        ref = MemorySessionStore.pool_ref_of
        assert ref(None) is None
        assert ref({}) is None
        assert ref({"pool": None}) is None
        assert ref({"pool": {"key": "nK"}}) is None  # digest-less
        assert ref({"pool": {"key": "nK", "digest": "d"}}) == "nK#d"

    def test_engine_snapshots_survive_a_sweep(
        self, serving_catalog, serving_profile
    ):
        """End to end: swap-outs write pool payloads; gc keeps exactly the
        referenced builds and a restore still resolves without resampling."""
        store = MemorySessionStore()
        engine = make_engine(serving_catalog, serving_profile, store=store)
        sid = engine.create_session()
        engine.recommend(sid)
        engine.feedback(sid, 0)
        engine.recommend(sid)
        first = engine.snapshot(sid, embed_pool=False)
        engine.feedback(sid, 1)
        engine.recommend(sid)
        second = engine.snapshot(sid, embed_pool=False)
        store.save(sid, second)
        assert len(store.list_pool_keys()) == 2  # two distinct builds persisted
        assert store.gc_pools() == 1  # only the snapshot's build survives
        live_ref = store.pool_ref_of(second)
        assert store.list_pool_keys() == [live_ref]
        del first
        restored = make_engine(serving_catalog, serving_profile, store=store)
        # The id resolves through the shared store, so replace it explicitly.
        restored.restore(store.load(sid), replace_existing=True)
        assert restored.stats().pools_sampled == 0


# ================================================== noisy elicitation (ψ < 1)
class TestNoisyElicitationAdaptation:
    def test_noisy_session_converges_while_served_adapted_pools(
        self, serving_catalog, serving_profile
    ):
        """fig8-style: a ψ<1 simulated user's regret shrinks end to end while
        the engine serves reweighted (adapted) pools on its cache misses."""
        from repro.service import AdaptationConfig
        from repro.simulation.user import SimulatedUser
        from repro.core.noise import NoiseModel

        engine = make_engine(
            serving_catalog,
            serving_profile,
            pool_adaptation=AdaptationConfig(psi=0.85, min_ess_fraction=0.15),
        )
        user = SimulatedUser.random(
            engine.evaluator, rng=1, noise=NoiseModel(0.85)
        )
        sid = engine.create_session(seed=9)
        recommended_history = []
        seen = {}
        for _round in range(8):
            round_ = engine.recommend(sid)
            recommended_history.append(list(round_.recommended))
            for package in round_.presented:
                seen.setdefault(package.items, package)
            engine.feedback(sid, user.click(round_.presented))
        ideal = user.true_top_k(list(seen.values()), k=2)
        first_regret = user.regret(recommended_history[0], ideal)
        final_regret = user.regret(recommended_history[-1], ideal)
        assert final_regret < first_regret  # the noisy session still learned
        assert final_regret < 0.05
        stats = engine.stats()
        assert stats.pools_adapted >= 1  # the misses were served by reuse
        assert stats.adaptation["reuse_rate"] > 0.0


# ================================================= weighted pools, end to end
class TestWeightedPoolsEndToEnd:
    def _weighted_pool(self, num_features, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        samples = rng.normal(size=(12, num_features))
        weights = rng.random(12) * np.pi  # irrational-ish, full double width
        return SamplePool(samples, weights)

    def test_snapshot_restore_preserves_weight_bytes(
        self, serving_catalog, serving_profile
    ):
        """Satellite acceptance: weight arrays survive the JSON snapshot
        round-trip byte-identically (repr-roundtrip of doubles)."""
        engine = make_engine(serving_catalog, serving_profile)
        sid = engine.create_session(seed=4)
        engine.recommend(sid)
        pool = self._weighted_pool(serving_catalog.num_features)
        entry = engine.sessions.acquire(sid)
        entry.recommender.set_pool(pool)
        payload = json.loads(json.dumps(engine.snapshot(sid)))
        fresh = make_engine(serving_catalog, serving_profile)
        fresh.restore(payload)
        restored = fresh.sessions.acquire(sid).recommender.pending_pool
        assert restored.samples.tobytes() == pool.samples.tobytes()
        assert restored.weights.tobytes() == pool.weights.tobytes()

    def test_engine_maintenance_keeps_surviving_weights(
        self, serving_catalog, serving_profile
    ):
        """The §3.4 split preserves each surviving sample's importance weight."""
        engine = make_engine(serving_catalog, serving_profile)
        pool = self._weighted_pool(serving_catalog.num_features, rng_seed=2)
        direction = np.zeros(serving_catalog.num_features)
        direction[0] = 1.0
        constraints = ConstraintSet(direction[None, :])
        surviving, deficit = engine._maintenance_split(
            constraints, pool.size, pool
        )
        mask = constraints.valid_mask(pool.samples)
        assert surviving.size == int(mask.sum())
        assert deficit == pool.size - surviving.size
        np.testing.assert_array_equal(surviving.weights, pool.weights[mask])
