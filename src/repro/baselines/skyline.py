"""Skyline items and skyline packages — the baseline of Zhang & Chomicki / Li et al.

The introduction of the paper contrasts the utility-based approach with
returning *all skyline packages*: packages not dominated by any other package
on every feature.  The key empirical point (reproduced by the
``bench_skyline_explosion`` benchmark) is that the number of skyline packages
grows into the hundreds or thousands even for modest datasets, which is why
presenting them all to a user is impractical.

Domination here follows the paper's convention: with a *preference direction*
per feature (+1 = larger is better, -1 = smaller is better), package ``a``
dominates package ``b`` when ``a`` is at least as good on every feature and
strictly better on at least one.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import ItemCatalog
from repro.core.packages import Package, PackageEvaluator
from repro.utils.validation import require_matrix, require_vector


def _dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether oriented vector ``a`` dominates ``b`` (>= everywhere, > somewhere)."""
    return bool(np.all(a >= b) and np.any(a > b))


def skyline_of_vectors(vectors: np.ndarray, directions: np.ndarray) -> List[int]:
    """Indices of the skyline (non-dominated) rows of ``vectors``.

    ``directions`` holds +1 / -1 per feature (larger / smaller preferred).
    Uses the standard block-nested-loop approach with a maintained window,
    which is adequate for the sizes used in experiments.
    """
    vectors = require_matrix(vectors, "vectors")
    directions = require_vector(directions, "directions", length=vectors.shape[1])
    if not np.all(np.isin(directions, (-1.0, 1.0))):
        raise ValueError("directions must contain only +1 or -1 entries")
    oriented = vectors * directions
    window: List[int] = []
    for index in range(oriented.shape[0]):
        candidate = oriented[index]
        dominated = False
        remove: List[int] = []
        for kept in window:
            if _dominates(oriented[kept], candidate):
                dominated = True
                break
            if _dominates(candidate, oriented[kept]):
                remove.append(kept)
        if dominated:
            continue
        window = [kept for kept in window if kept not in remove]
        window.append(index)
    return sorted(window)


def skyline_items(
    catalog: ItemCatalog, directions: Optional[Sequence[float]] = None
) -> List[int]:
    """Indices of skyline items (non-dominated items) of the catalog."""
    if directions is None:
        directions = np.ones(catalog.num_features)
    return skyline_of_vectors(catalog.filled(0.0), np.asarray(directions, dtype=float))


def skyline_packages(
    evaluator: PackageEvaluator,
    package_size: int,
    directions: Optional[Sequence[float]] = None,
    item_indices: Optional[Sequence[int]] = None,
    max_packages: int = 2_000_000,
) -> List[Tuple[Package, np.ndarray]]:
    """All skyline packages of a *fixed* cardinality (as in [20, 29]).

    Returns ``(package, normalised feature vector)`` pairs for every package of
    exactly ``package_size`` items that is not dominated by another package of
    the same size.  Exponential in the item count; ``max_packages`` guards
    against accidental blow-ups.
    """
    if package_size <= 0:
        raise ValueError(f"package_size must be > 0, got {package_size}")
    if directions is None:
        directions = np.ones(evaluator.num_features)
    directions = np.asarray(directions, dtype=float)
    pool = (
        list(item_indices)
        if item_indices is not None
        else list(range(evaluator.catalog.num_items))
    )
    packages: List[Package] = []
    vectors: List[np.ndarray] = []
    for count, combo in enumerate(itertools.combinations(pool, package_size)):
        if count >= max_packages:
            raise RuntimeError(
                f"more than {max_packages} candidate packages; restrict "
                f"item_indices or package_size"
            )
        package = Package(tuple(combo))
        packages.append(package)
        vectors.append(evaluator.vector(package))
    if not packages:
        return []
    matrix = np.stack(vectors)
    indices = skyline_of_vectors(matrix, directions)
    return [(packages[i], matrix[i]) for i in indices]
