"""Core package-recommendation model: the paper's primary contribution.

This subpackage contains the data model (items, aggregate feature profiles,
packages), the linear utility function with Bayesian uncertainty, the
preference store fed by implicit click feedback, the ranking semantics
(EXP / TKP / MPO), and the top-level :class:`PackageRecommender` that ties the
whole preference-elicitation loop together.
"""

from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile, Aggregation
from repro.core.packages import Package, PackageEvaluator
from repro.core.utility import LinearUtility, sample_random_utility
from repro.core.preferences import Preference, PreferenceStore, PreferenceCycleError
from repro.core.ranking import (
    RankingSemantics,
    rank_packages_exp,
    rank_packages_mpo,
    rank_packages_tkp,
    rank_from_samples,
)
from repro.core.noise import NoiseModel
from repro.core.predicates import (
    MaxCountPredicate,
    MinCountPredicate,
    PackagePredicate,
    PredicateSet,
)
from repro.core.elicitation import ElicitationConfig, PackageRecommender, RecommendationRound

__all__ = [
    "ItemCatalog",
    "AggregateProfile",
    "Aggregation",
    "Package",
    "PackageEvaluator",
    "LinearUtility",
    "sample_random_utility",
    "Preference",
    "PreferenceStore",
    "PreferenceCycleError",
    "RankingSemantics",
    "rank_packages_exp",
    "rank_packages_tkp",
    "rank_packages_mpo",
    "rank_from_samples",
    "NoiseModel",
    "PackagePredicate",
    "MinCountPredicate",
    "MaxCountPredicate",
    "PredicateSet",
    "ElicitationConfig",
    "PackageRecommender",
    "RecommendationRound",
]
