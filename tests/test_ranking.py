"""Tests for the EXP / TKP / MPO ranking semantics (§2.2, §4)."""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.ranking import (
    RankingSemantics,
    rank_from_samples,
    rank_packages_exp,
    rank_packages_mpo,
    rank_packages_tkp,
)
from repro.sampling.base import SamplePool
from repro.topk.package_search import PackageSearchResult


@pytest.fixture
def paper_example_candidates(paper_example_evaluator):
    """The six packages of Figure 1(b) with their normalised vectors."""
    packages = [
        Package.of([0]), Package.of([1]), Package.of([2]),
        Package.of([0, 1]), Package.of([1, 2]), Package.of([0, 2]),
    ]
    vectors = paper_example_evaluator.vectors(packages)
    return packages, vectors


@pytest.fixture
def paper_example_pool():
    """The discrete weight distribution of Figure 2(a)."""
    samples = np.array([[0.5, 0.1], [0.1, 0.5], [0.1, 0.1]])
    weights = np.array([0.3, 0.4, 0.3])
    return SamplePool(samples, weights)


class TestRankingSemanticsEnum:
    def test_parse_strings(self):
        assert RankingSemantics.parse("exp") is RankingSemantics.EXP
        assert RankingSemantics.parse("TKP") is RankingSemantics.TKP
        assert RankingSemantics.parse(RankingSemantics.MPO) is RankingSemantics.MPO

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            RankingSemantics.parse("best")
        with pytest.raises(TypeError):
            RankingSemantics.parse(3)


class TestPaperExample2:
    """Examples 1-3 of the paper, computed exactly over the discrete distribution."""

    def test_exp_expected_utilities(self, paper_example_candidates, paper_example_pool):
        _, vectors = paper_example_candidates
        ranked = rank_packages_exp(vectors, paper_example_pool, 6)
        expected_utility = dict(ranked)
        # Example 1: E[U(p1)] = 0.35*0.3 + 0.31*0.4 + 0.11*0.3 = 0.262
        assert expected_utility[0] == pytest.approx(0.262, abs=1e-9)
        # Example 1: p4 has the largest expected utility, followed by p5.
        assert ranked[0][0] == 3
        assert ranked[1][0] == 4

    def test_tkp_top2_probabilities(self, paper_example_candidates, paper_example_pool):
        _, vectors = paper_example_candidates
        ranked = rank_packages_tkp(vectors, paper_example_pool, 6, sigma=2)
        probabilities = dict(ranked)
        # Example 2: P(p5 in top-2) = 0.4 + 0.3 = 0.7, P(p4 in top-2) = 0.6.
        assert probabilities[4] == pytest.approx(0.7)
        assert probabilities[3] == pytest.approx(0.6)
        assert ranked[0][0] == 4
        assert ranked[1][0] == 3

    def test_mpo_most_probable_list(self, paper_example_candidates, paper_example_pool):
        _, vectors = paper_example_candidates
        best_list, probability = rank_packages_mpo(vectors, paper_example_pool, 2)
        # Example 3: the best top-2 list under MPO is (p5, p2) with probability 0.4.
        assert best_list == [4, 1]
        assert probability == pytest.approx(0.4)

    def test_semantics_disagree_on_this_example(self, paper_example_candidates, paper_example_pool):
        """The paper's point: EXP, TKP and MPO can produce different top-2 lists."""
        _, vectors = paper_example_candidates
        exp_top = [i for i, _ in rank_packages_exp(vectors, paper_example_pool, 2)]
        tkp_top = [i for i, _ in rank_packages_tkp(vectors, paper_example_pool, 2, sigma=2)]
        mpo_top, _ = rank_packages_mpo(vectors, paper_example_pool, 2)
        assert exp_top == [3, 4]
        assert tkp_top == [4, 3]
        assert mpo_top == [4, 1]


class TestCandidateRankingEdgeCases:
    def test_empty_pool_rejected(self, paper_example_candidates):
        _, vectors = paper_example_candidates
        empty = SamplePool.empty(2)
        with pytest.raises(ValueError):
            rank_packages_exp(vectors, empty, 2)
        with pytest.raises(ValueError):
            rank_packages_tkp(vectors, empty, 2)
        with pytest.raises(ValueError):
            rank_packages_mpo(vectors, empty, 2)

    def test_invalid_k_rejected(self, paper_example_candidates, paper_example_pool):
        _, vectors = paper_example_candidates
        with pytest.raises(ValueError):
            rank_packages_exp(vectors, paper_example_pool, 0)
        with pytest.raises(ValueError):
            rank_packages_tkp(vectors, paper_example_pool, 2, sigma=0)

    def test_raw_tuple_pool_accepted(self, paper_example_candidates):
        _, vectors = paper_example_candidates
        samples = np.array([[0.5, 0.1]])
        ranked = rank_packages_exp(vectors, (samples, np.array([1.0])), 1)
        assert ranked[0][0] == 3

    def test_tie_break_by_candidate_index(self):
        vectors = np.array([[0.5, 0.5], [0.5, 0.5], [0.1, 0.1]])
        pool = SamplePool.unweighted(np.array([[1.0, 0.0]]))
        ranked = rank_packages_exp(vectors, pool, 2)
        assert [i for i, _ in ranked] == [0, 1]


def _result(pairs):
    packages = [Package.of(items) for items, _ in pairs]
    utilities = [u for _, u in pairs]
    return PackageSearchResult(packages, utilities, items_accessed=0, candidates_generated=0)


class TestRankFromSamples:
    def test_exp_aggregation_uses_utility_means(self):
        results = [
            _result([((1,), 0.9), ((2,), 0.5)]),
            _result([((2,), 0.8), ((1,), 0.1)]),
        ]
        ranked = rank_from_samples(results, 2, "exp")
        # mean utility: package (1,): 0.5, package (2,): 0.65
        assert [p.items for p in ranked] == [(2,), (1,)]

    def test_tkp_counts_appearances(self):
        results = [
            _result([((1,), 0.9)]),
            _result([((1,), 0.8)]),
            _result([((2,), 0.7)]),
        ]
        ranked = rank_from_samples(results, 2, RankingSemantics.TKP)
        assert ranked[0].items == (1,)

    def test_mpo_counts_whole_lists(self):
        results = [
            _result([((1,), 0.9), ((2,), 0.5)]),
            _result([((1,), 0.9), ((2,), 0.5)]),
            _result([((2,), 0.9), ((1,), 0.5)]),
        ]
        ranked = rank_from_samples(results, 2, "mpo")
        assert [p.items for p in ranked] == [(1,), (2,)]

    def test_sample_weights_shift_the_outcome(self):
        results = [
            _result([((1,), 0.9)]),
            _result([((2,), 0.9)]),
        ]
        unweighted = rank_from_samples(results, 1, "tkp")
        weighted = rank_from_samples(results, 1, "tkp", sample_weights=np.array([0.1, 5.0]))
        assert unweighted[0].items == (1,)  # tie broken by package id
        assert weighted[0].items == (2,)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            rank_from_samples([], 1, "exp")
        results = [_result([((1,), 0.9)])]
        with pytest.raises(ValueError):
            rank_from_samples(results, 0, "exp")
        with pytest.raises(ValueError):
            rank_from_samples(results, 1, "exp", sample_weights=np.ones(3))
