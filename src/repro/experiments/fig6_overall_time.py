"""Figure 6: overall time to generate top-k package recommendations.

For each dataset (UNI, PWR, COR, ANT, NBA) and each sampler (RS, IS, MS) the
paper measures, under the EXP semantics, the time spent generating valid
weight samples and the time spent finding the top-k packages, while varying

* (a)–(e) the number of valid samples required (1000–5000), and
* (f)–(j) the number of features (2–10), where importance sampling is excluded
  beyond 5 features because the grid-based centre computation is exponential
  in the dimensionality.

The headline observations to reproduce: sample generation dominates (or at
least matches) top-k search time; rejection sampling is considerably more
expensive than the feedback-aware samplers; MCMC scales with dimensionality
while importance sampling does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.ranking import RankingSemantics, rank_from_samples
from repro.experiments.harness import (
    ExperimentScale,
    build_evaluator,
    random_package_vectors,
    random_preference_directions,
)
from repro.sampling.base import ConstraintSet, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import (
    ImportanceSampler,
    ImportanceSamplingIntractableError,
)
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler, RejectionSamplingError
from repro.topk.batch_search import BatchTopKPackageSearcher
from repro.utils.rng import ensure_rng


@dataclass
class OverallTimePoint:
    """One (dataset, sampler, swept value) measurement of Figure 6.

    Attributes
    ----------
    dataset / sampler:
        Workload and sampler short names.
    varied / value:
        Name and value of the swept parameter ("samples" or "features").
    sample_generation_seconds:
        Time to collect the requested number of valid weight samples.
    topk_seconds:
        Time to run ``Top-k-Pkg`` for (a subset of) the samples and aggregate
        them under EXP.
    skipped:
        True when the configuration is intractable for the sampler (importance
        sampling beyond the feature cut-off), mirroring the paper's exclusion.
    """

    dataset: str
    sampler: str
    varied: str
    value: int
    sample_generation_seconds: float = 0.0
    topk_seconds: float = 0.0
    skipped: bool = False

    @property
    def total_seconds(self) -> float:
        return self.sample_generation_seconds + self.topk_seconds


def _make_sampler(name: str, prior: GaussianMixture, seed: int) -> Sampler:
    if name == "RS":
        return RejectionSampler(prior, rng=ensure_rng(seed))
    if name == "IS":
        return ImportanceSampler(prior, rng=ensure_rng(seed))
    if name == "MS":
        return MetropolisHastingsSampler(prior, rng=ensure_rng(seed))
    raise ValueError(f"unknown sampler {name!r}")


def _measure_point(
    dataset: str,
    sampler_name: str,
    varied: str,
    value: int,
    num_samples: int,
    num_features: int,
    scale: ExperimentScale,
    k: int,
    num_preferences: int,
    topk_sample_budget: int,
    search_beam_width: Optional[int],
    search_items_cap: Optional[int],
    seed: int,
) -> OverallTimePoint:
    rng = ensure_rng(seed)
    evaluator = build_evaluator(dataset, scale, num_features=num_features)
    _, vectors = random_package_vectors(evaluator, scale.num_packages, rng=rng)
    hidden = rng.uniform(-1.0, 1.0, num_features)
    directions = random_preference_directions(
        vectors, num_preferences, rng=rng, consistent_with=hidden
    )
    constraints = ConstraintSet(directions)
    prior = GaussianMixture.default_prior(num_features, scale.num_gaussians, rng=rng)
    sampler = _make_sampler(sampler_name, prior, seed + 17)

    point = OverallTimePoint(dataset, sampler_name, varied, value)
    start = time.perf_counter()
    try:
        pool = sampler.sample(num_samples, constraints)
    except (ImportanceSamplingIntractableError, RejectionSamplingError):
        # Mirror the paper's exclusions: IS is intractable beyond the feature
        # cut-off, and plain rejection sampling becomes impractical once the
        # accumulated feedback shrinks the valid region's prior mass below
        # what the attempt budget can hit (§5.3's point about RS cost).
        point.skipped = True
        return point
    point.sample_generation_seconds = time.perf_counter() - start

    # Bounded batch search keeps the scaled-down sweep tractable without
    # changing the relative shapes the figure is about: all budgeted samples
    # share one sorted-list walk instead of searching one by one.
    searcher = BatchTopKPackageSearcher(
        evaluator, beam_width=search_beam_width, max_items_accessed=search_items_cap
    )
    budget = min(topk_sample_budget, pool.size)
    start = time.perf_counter()
    results = searcher.search_many(pool.samples[:budget], k)
    rank_from_samples(
        results, k, RankingSemantics.EXP, sample_weights=pool.weights[:budget]
    )
    point.topk_seconds = time.perf_counter() - start
    return point


def run_overall_time_experiment(
    datasets: Sequence[str] = ("UNI", "PWR", "COR", "ANT", "NBA"),
    samplers: Sequence[str] = ("RS", "IS", "MS"),
    sample_counts: Sequence[int] = (100, 200, 300, 400, 500),
    feature_counts: Sequence[int] = (2, 4, 6, 8, 10),
    k: int = 5,
    num_preferences: int = 20,
    topk_sample_budget: int = 25,
    search_beam_width: Optional[int] = 500,
    search_items_cap: Optional[int] = 150,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> List[OverallTimePoint]:
    """Run both halves of Figure 6 and return every measured point.

    ``topk_sample_budget`` caps how many of the generated samples are pushed
    through ``Top-k-Pkg`` (the per-sample searches are embarrassingly similar;
    the cap keeps the scaled-down run fast without changing relative shapes).
    The paper's sweep values are 1000–5000 samples; pass them together with
    ``scale=ExperimentScale.paper()`` for a full-scale run.
    """
    scale = scale if scale is not None else ExperimentScale(seed=seed)
    points: List[OverallTimePoint] = []
    for dataset in datasets:
        for sampler_name in samplers:
            for value in sample_counts:
                points.append(
                    _measure_point(
                        dataset, sampler_name, "samples", value,
                        num_samples=value,
                        num_features=min(scale.num_features, 4),
                        scale=scale, k=k,
                        num_preferences=num_preferences,
                        topk_sample_budget=topk_sample_budget,
                        search_beam_width=search_beam_width,
                        search_items_cap=search_items_cap,
                        seed=seed,
                    )
                )
            base_samples = min(sample_counts) if sample_counts else 50
            for value in feature_counts:
                points.append(
                    _measure_point(
                        dataset, sampler_name, "features", value,
                        num_samples=base_samples,
                        num_features=value,
                        scale=scale, k=k,
                        num_preferences=num_preferences,
                        topk_sample_budget=topk_sample_budget,
                        search_beam_width=search_beam_width,
                        search_items_cap=search_items_cap,
                        seed=seed,
                    )
                )
    return points


def summarise(points: List[OverallTimePoint]) -> List[List]:
    """Rows (dataset, sampler, sweep, value, sample-gen s, top-k s, skipped)."""
    rows = []
    for point in points:
        rows.append(
            [
                point.dataset,
                point.sampler,
                point.varied,
                point.value,
                point.sample_generation_seconds,
                point.topk_seconds,
                point.skipped,
            ]
        )
    return rows
