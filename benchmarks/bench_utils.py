"""Helpers shared by the benchmark modules (results + CI-gate persistence)."""

from __future__ import annotations

import json
import os

#: Directory where each figure benchmark writes its regenerated table/series.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Machine-readable record of the gated benchmark metrics, consumed by
#: ``tools/bench_gate.py`` (the CI ``bench-gate`` job) and uploaded as an
#: artifact.  Lives at the repo root so the committed copy is easy to find.
CI_METRICS_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_ci.json")

CI_SCHEMA_VERSION = 1


def write_results(name: str, text: str) -> str:
    """Persist a regenerated figure table under ``results/`` and return its path.

    The benchmark harness also prints the same text, but pytest captures
    stdout, so the file is the durable record referenced by EXPERIMENTS.md.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def record_ci_metric(
    name: str,
    value: float,
    floor: float = None,
    source: str = "",
    description: str = "",
    unit: str = "x",
    *,
    ceiling: float = None,
) -> str:
    """Merge one gated metric into ``BENCH_ci.json`` and return its path.

    Each benchmark module records the headline number it *asserts* (value and
    the bound it asserted against), so the CI gate — and anyone reading the
    artifact — sees every gated measurement in one machine-readable place.
    Pass ``floor`` for higher-is-better metrics (speedups, rates) or
    ``ceiling`` for lower-is-better ones (row fractions, latencies) —
    exactly one of the two.  Existing entries for other metrics are
    preserved, so the file accumulates across modules within one run.
    """
    if (floor is None) == (ceiling is None):
        raise ValueError("pass exactly one of floor= or ceiling=")
    payload = {"schema_version": CI_SCHEMA_VERSION, "metrics": {}}
    if os.path.exists(CI_METRICS_PATH):
        try:
            with open(CI_METRICS_PATH, encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing.get("schema_version") == CI_SCHEMA_VERSION:
                payload["metrics"] = dict(existing.get("metrics", {}))
        except (json.JSONDecodeError, OSError):
            pass  # a corrupt file is simply regenerated
    entry = {
        "value": round(float(value), 3),
        "unit": unit,
        "higher_is_better": floor is not None,
        "source": source,
        "description": description,
    }
    if floor is not None:
        entry["floor"] = float(floor)
    else:
        entry["ceiling"] = float(ceiling)
    payload["metrics"][name] = entry
    payload["metrics"] = dict(sorted(payload["metrics"].items()))
    with open(CI_METRICS_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return CI_METRICS_PATH
