"""Benchmark: the fingerprint-partitioned pool service (sharding + compaction).

Not a paper figure — this measures the sharded-pool-service tentpole along
its two acceptance axes:

* **Sharding equivalence** — a heterogeneous ``recommend_many`` workload
  (every session its own constraint fingerprint after round one) served by a
  ``ShardedPoolRepository`` with 4 thread-backed shards must produce
  **bit-identical rounds** to the unsharded engine (1 shard, inline).  Fills
  are key-deterministic, so sharding changes *where* pools are built, never
  what is served.  The asserted metric is the equivalence indicator itself
  (1.0 = every presented package of every round identical); the 4-vs-1-shard
  wall-clock ratio is recorded as an informational metric — on a multi-core
  host thread-backed shards overlap their fills, on a single-core CI runner
  the ratio hovers around 1.
* **Process-backend equivalence** — the same workload served by 4
  process-backed shards (``pool_shard_backend="process"``): fills execute in
  worker processes (asserted via recorded worker PIDs) yet every round is
  bit-identical to the inline engine, because a :class:`FillSpec` carries the
  derived seed across the process boundary.  The wall-clock ratio is recorded
  as ``sharding_process_fill_speedup`` (informational floor 0.0 on CI; the
  nightly multi-core job re-runs this module with
  ``REQUIRE_MULTICORE_SPEEDUP=1`` which turns the > 1.2x assertion on).
* **Snapshot compaction** — 50 identical-prefix sessions (the cold-start
  burst: all sharing one pool per round) snapshotted into a JSON store twice:
  embedded pools (the pre-compaction format) vs fingerprint references with
  the pool payload stored once in the store's pool table.  The asserted
  floor: reference snapshots shrink the store by ≥ 5x (measured far higher —
  the pool payload is the snapshot, for any realistic pool size).

Both headline numbers are recorded in ``BENCH_ci.json`` and re-validated
against pinned floors by ``tools/bench_gate.py`` (the CI bench-gate job).
The regenerated table lands in ``results/bench_sharding.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import build_evaluator
from repro.service import EngineConfig, JsonSessionStore, RecommendationEngine
from repro.simulation.traffic import build_user_population, session_seed_for

#: Acceptance floors (pinned in tools/bench_gate.py).
MIN_EQUIVALENCE = 1.0
MIN_COMPACTION_RATIO = 5.0
#: Only asserted when REQUIRE_MULTICORE_SPEEDUP=1 (the nightly multi-core job).
MULTICORE_SPEEDUP_FLOOR = 1.2

NUM_SESSIONS = 24  # heterogeneous equivalence workload
NUM_ROUNDS = 3
NUM_SHARDS = 4
NUM_SNAPSHOT_SESSIONS = 50  # identical-prefix compaction workload
SNAPSHOT_ROUNDS = 2


def _elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=3,
        num_random=2,
        max_package_size=3,
        num_samples=150,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=150,
        search_items_cap=60,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def _engine(scale, shards, backend, store=None, **overrides) -> RecommendationEngine:
    evaluator = build_evaluator("UNI", scale, num_features=4)
    config = EngineConfig(
        elicitation=overrides.pop("elicitation", _elicitation_config()),
        seed=1,
        pool_shards=shards,
        pool_shard_backend=backend,
        **overrides,
    )
    return RecommendationEngine(
        evaluator.catalog, evaluator.profile, config, store=store
    )


def _run_heterogeneous(engine):
    """Drive the batched heterogeneous workload; returns (rounds, seconds)."""
    users = build_user_population(
        engine.evaluator, NUM_SESSIONS, identical_prefix=False, user_seed=0
    )
    start = time.perf_counter()
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(NUM_SESSIONS)
    ]
    presented = []
    for _round in range(NUM_ROUNDS):
        rounds = engine.recommend_many(ids)
        presented.append(
            [[p.items for p in round_.presented] for round_ in rounds]
        )
        for index, (sid, round_) in enumerate(zip(ids, rounds)):
            engine.feedback(sid, users[index].click(round_.presented))
    return presented, time.perf_counter() - start


def _run_compaction(scale, tmp_path_factory):
    """Snapshot 50 pool-sharing sessions embedded vs by reference."""
    compact_store = JsonSessionStore(
        str(tmp_path_factory.mktemp("sharding-compact"))
    )
    embedded_store = JsonSessionStore(
        str(tmp_path_factory.mktemp("sharding-embedded"))
    )
    # Larger pools stress the thing compaction removes: the embedded floats.
    engine = _engine(
        scale,
        NUM_SHARDS,
        "thread",
        store=compact_store,
        elicitation=_elicitation_config(num_samples=400),
    )
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=True)
        )
        for index in range(NUM_SNAPSHOT_SESSIONS)
    ]
    for _round in range(SNAPSHOT_ROUNDS):
        rounds = engine.recommend_many(ids)
        for sid, round_ in zip(ids, rounds):
            engine.feedback(sid, 0)
    for sid in ids:
        embedded_store.save(sid, engine.snapshot(sid))
        compact_store.save(sid, engine.snapshot(sid, embed_pool=False))
    embedded_bytes = embedded_store.total_bytes()
    compact_bytes = compact_store.total_bytes()

    # Restart sanity: a fresh engine over the compact store restores every
    # session by fingerprint without resampling a single pool.
    restarted = _engine(
        scale,
        NUM_SHARDS,
        "thread",
        store=compact_store,
        elicitation=_elicitation_config(num_samples=400),
    )
    restored_rounds = [restarted.recommend(sid) for sid in ids[:5]]
    restarted_stats = restarted.stats()
    engine.close_repository()
    restarted.close_repository()
    return {
        "embedded_bytes": embedded_bytes,
        "compact_bytes": compact_bytes,
        "ratio": embedded_bytes / compact_bytes,
        "pool_keys": len(compact_store.list_pool_keys()),
        "restored_rounds": restored_rounds,
        "restarted_stats": restarted_stats,
    }


@pytest.fixture(scope="module")
def sharding_reports(scale, tmp_path_factory):
    from bench_utils import record_ci_metric, write_results

    unsharded = _engine(scale, 1, "inline")
    rounds_unsharded, seconds_unsharded = _run_heterogeneous(unsharded)
    sharded = _engine(scale, NUM_SHARDS, "thread")
    rounds_sharded, seconds_sharded = _run_heterogeneous(sharded)
    sharded_stats = sharded.stats()
    sharded.close_repository()

    process = _engine(scale, NUM_SHARDS, "process")
    rounds_process, seconds_process = _run_heterogeneous(process)
    worker_pids = set()
    for shard in process.pool_repository.shards:
        for key in shard.keys():
            pid = shard.peek(key).stats.get("fill_worker_pid")
            if pid is not None:
                worker_pids.add(pid)
    process_stats = process.stats()
    process.close_repository()

    equivalence = 1.0 if rounds_sharded == rounds_unsharded else 0.0
    fill_speedup = seconds_unsharded / seconds_sharded if seconds_sharded else 0.0
    out_of_process = bool(worker_pids) and os.getpid() not in worker_pids
    process_equivalence = (
        1.0 if rounds_process == rounds_unsharded and out_of_process else 0.0
    )
    process_speedup = (
        seconds_unsharded / seconds_process if seconds_process else 0.0
    )
    compaction = _run_compaction(scale, tmp_path_factory)

    repo = sharded_stats.pool_repository
    shard_fills = [shard["fills"] for shard in repo["per_shard"]]
    header = (
        "Sharded pool service — fingerprint-partitioned PoolRepository\n"
        f"{NUM_SESSIONS} heterogeneous sessions x {NUM_ROUNDS} rounds, "
        f"{NUM_SHARDS} thread-backed shards vs unsharded: "
        f"bit-identical={equivalence == 1.0} "
        f"(floor: exact equivalence); process backend "
        f"bit-identical={process_equivalence == 1.0}; snapshot compaction = "
        f"{compaction['ratio']:.1f}x (floor {MIN_COMPACTION_RATIO}x)"
    )
    process_repo = process_stats.pool_repository
    body = "\n".join(
        [
            "[sharding equivalence (asserted)]",
            f"  unsharded: 1 shard inline, {seconds_unsharded:.3f}s",
            f"  sharded:   {NUM_SHARDS} shards thread, {seconds_sharded:.3f}s "
            f"(x{fill_speedup:.2f} vs unsharded; informational — "
            f"thread shards only overlap on multi-core hosts)",
            f"  per-shard fills: {shard_fills} "
            f"(multi_shard_fill_batches={repo['multi_shard_fill_batches']})",
            f"  rounds bit-identical: {equivalence == 1.0}",
            "",
            "[process backend equivalence (asserted)]",
            f"  process:   {NUM_SHARDS} shards process, {seconds_process:.3f}s "
            f"(x{process_speedup:.2f} vs unsharded; informational on "
            f"single-core CI, nightly asserts > {MULTICORE_SPEEDUP_FLOOR}x)",
            f"  distinct worker pids: {len(worker_pids)} "
            f"(engine pid excluded: {out_of_process}; "
            f"restarts={process_repo.get('worker_restarts', 0)}, "
            f"inline_fallbacks={process_repo.get('inline_fallbacks', 0)})",
            f"  rounds bit-identical: {rounds_process == rounds_unsharded}",
            "",
            "[snapshot compaction (asserted)]",
            f"  {NUM_SNAPSHOT_SESSIONS} identical-prefix sessions x "
            f"{SNAPSHOT_ROUNDS} rounds, 400-sample pools",
            f"  embedded-pool snapshots: {compaction['embedded_bytes']:,} bytes",
            f"  reference snapshots:     {compaction['compact_bytes']:,} bytes "
            f"({compaction['pool_keys']} shared pool payload(s))",
            f"  compaction ratio: {compaction['ratio']:.1f}x",
            f"  restart restore: {len(compaction['restored_rounds'])} sessions, "
            f"pools_sampled={compaction['restarted_stats'].pools_sampled}",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_sharding.txt", header + "\n\n" + body)
    record_ci_metric(
        "sharding_equivalence",
        equivalence,
        MIN_EQUIVALENCE,
        source="benchmarks/test_bench_sharding.py",
        description=(
            f"1.0 iff {NUM_SHARDS} thread-backed shards serve bit-identical "
            f"rounds to the unsharded engine, {NUM_SESSIONS} heterogeneous "
            f"sessions x {NUM_ROUNDS} rounds"
        ),
        unit="",
    )
    record_ci_metric(
        "snapshot_compaction_ratio",
        compaction["ratio"],
        MIN_COMPACTION_RATIO,
        source="benchmarks/test_bench_sharding.py",
        description=(
            f"Embedded-pool snapshot-store bytes over fingerprint-reference "
            f"bytes, {NUM_SNAPSHOT_SESSIONS} pool-sharing sessions"
        ),
    )
    record_ci_metric(
        "sharding_process_equivalence",
        process_equivalence,
        MIN_EQUIVALENCE,
        source="benchmarks/test_bench_sharding.py",
        description=(
            f"1.0 iff {NUM_SHARDS} process-backed shards serve bit-identical "
            f"rounds to the unsharded engine with fills executing in worker "
            f"processes (distinct PIDs observed)"
        ),
        unit="",
    )
    record_ci_metric(
        "sharding_process_fill_speedup",
        process_speedup,
        0.0,  # informational here; nightly multi-core job asserts > 1.2x
        source="benchmarks/test_bench_sharding.py",
        description=(
            f"Unsharded wall time over {NUM_SHARDS}-process-shard wall time "
            f"(informational on CI; nightly asserts > "
            f"{MULTICORE_SPEEDUP_FLOOR}x on a multi-core host)"
        ),
    )
    record_ci_metric(
        "sharding_parallel_fill_speedup",
        fill_speedup,
        0.0,  # informational: single-core runners cannot overlap threads
        source="benchmarks/test_bench_sharding.py",
        description=(
            f"Unsharded wall time over {NUM_SHARDS}-thread-shard wall time on "
            f"the heterogeneous workload (informational; needs cores to win)"
        ),
    )
    return {
        "equivalence": equivalence,
        "fill_speedup": fill_speedup,
        "sharded_stats": sharded_stats,
        "process_equivalence": process_equivalence,
        "process_speedup": process_speedup,
        "process_stats": process_stats,
        "worker_pids": worker_pids,
        "compaction": compaction,
    }


def test_sharded_rounds_are_bit_identical_to_unsharded(sharding_reports):
    """The acceptance headline: sharding must never change what is served."""
    assert sharding_reports["equivalence"] >= MIN_EQUIVALENCE


def test_fills_were_partitioned_across_shards(sharding_reports):
    """The heterogeneous workload must exercise real partitioning: several
    shards fill pools, and at least one batch spanned multiple shards."""
    repo = sharding_reports["sharded_stats"].pool_repository
    assert repo["num_shards"] == NUM_SHARDS
    assert repo["backend"] == "thread"
    busy = sum(shard["fills"] > 0 for shard in repo["per_shard"])
    assert busy >= 2
    assert repo["multi_shard_fill_batches"] >= 1


def test_process_backend_rounds_are_bit_identical(sharding_reports):
    """The FillSpec seam: process-parallel fills must serve the same rounds,
    and the fills must demonstrably run in worker processes."""
    assert sharding_reports["process_equivalence"] >= MIN_EQUIVALENCE
    worker_pids = sharding_reports["worker_pids"]
    assert worker_pids and os.getpid() not in worker_pids
    repo = sharding_reports["process_stats"].pool_repository
    assert repo["backend"] == "process"
    assert repo["worker_restarts"] == 0
    assert repo["inline_fallbacks"] == 0


@pytest.mark.skipif(
    os.environ.get("REQUIRE_MULTICORE_SPEEDUP") != "1",
    reason="multi-core speedup asserted only in the nightly job "
    "(REQUIRE_MULTICORE_SPEEDUP=1)",
)
def test_process_backend_beats_inline_on_multicore(sharding_reports):
    """Nightly multi-core floor: process shards must escape the GIL."""
    speedup = sharding_reports["process_speedup"]
    assert speedup > MULTICORE_SPEEDUP_FLOOR, (
        f"process-shard fill speedup {speedup:.2f}x below the "
        f"{MULTICORE_SPEEDUP_FLOOR}x multi-core floor"
    )


def test_snapshot_store_shrinks_by_the_floor(sharding_reports):
    """The acceptance floor: reference snapshots shrink the store >= 5x."""
    ratio = sharding_reports["compaction"]["ratio"]
    assert ratio >= MIN_COMPACTION_RATIO, (
        f"compaction ratio {ratio:.2f}x below the {MIN_COMPACTION_RATIO}x floor"
    )


def test_sessions_share_one_pool_payload(sharding_reports):
    """Identical-prefix sessions must deduplicate to a handful of payloads
    (one per round-prefix), not one per session."""
    compaction = sharding_reports["compaction"]
    assert compaction["pool_keys"] <= SNAPSHOT_ROUNDS + 1
    assert compaction["pool_keys"] < NUM_SNAPSHOT_SESSIONS


def test_restart_restores_without_resampling(sharding_reports):
    """Pools are re-resolved by fingerprint from the store's pool table."""
    compaction = sharding_reports["compaction"]
    assert all(round_.recommended for round_ in compaction["restored_rounds"])
    assert compaction["restarted_stats"].pools_sampled == 0
    assert compaction["restarted_stats"].sessions_restored == 5
