"""Exhaustive package enumeration: correctness oracle and tiny-instance helper.

``Top-k-Pkg`` prunes aggressively; these routines compute the same answers by
brute force so tests can verify the pruning never changes the result, and so
the worked example of the paper's Figures 1–2 (3 items, φ = 2) can be
reproduced exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packages import Package, PackageEvaluator
from repro.core.predicates import PredicateSet
from repro.utils.validation import require_vector


def enumerate_package_space(
    evaluator: PackageEvaluator,
    max_size: Optional[int] = None,
    item_indices: Optional[Sequence[int]] = None,
) -> List[Package]:
    """All packages of size 1..max_size (the paper's package space ``P``)."""
    return list(evaluator.enumerate_packages(max_size=max_size, item_indices=item_indices))


def brute_force_top_k_packages(
    evaluator: PackageEvaluator,
    weights: np.ndarray,
    k: int,
    max_size: Optional[int] = None,
    item_indices: Optional[Sequence[int]] = None,
    predicates: Optional[PredicateSet] = None,
) -> List[Tuple[Package, float]]:
    """Exact top-k packages by exhaustive enumeration.

    Ties are broken by package id, matching the deterministic tie-breaker the
    paper assumes, so results are directly comparable with
    :class:`~repro.topk.package_search.TopKPackageSearcher`.
    """
    weights = require_vector(weights, "weights", length=evaluator.num_features)
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    scored: List[Tuple[float, Package]] = []
    for package in evaluator.enumerate_packages(max_size=max_size, item_indices=item_indices):
        if predicates is not None and not predicates.satisfied_by(
            package, evaluator.catalog
        ):
            continue
        scored.append((evaluator.utility(package, weights), package))
    scored.sort(key=lambda pair: (-pair[0], pair[1].package_id))
    return [(package, value) for value, package in scored[:k]]


def brute_force_top_k_over_candidates(
    evaluator: PackageEvaluator,
    candidates: Sequence[Package],
    weights: np.ndarray,
    k: int,
) -> List[Tuple[Package, float]]:
    """Top-k among an explicit candidate list (used for sampled package spaces)."""
    weights = require_vector(weights, "weights", length=evaluator.num_features)
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    scored = [(evaluator.utility(p, weights), p) for p in candidates]
    scored.sort(key=lambda pair: (-pair[0], pair[1].package_id))
    return [(package, value) for value, package in scored[:k]]
