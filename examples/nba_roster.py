"""NBA fantasy-roster recommendation — the paper's real-data scenario.

The paper's experiments use career statistics of 3705 NBA players with 10
features.  This example builds a "fantasy roster" recommender on the synthetic
NBA dataset substitute: a package is a set of up to 5 players, scored by
aggregate statistics (total points, average efficiency proxies, ...).  The
user's taste — e.g. "I value assists and three-point shooting, turnovers are
bad" — is hidden and elicited through clicks.

It also contrasts the three ranking semantics (EXP / TKP / MPO) on the final
posterior, reproducing the §5.4 observation that they are correlated but not
identical.

Run with::

    python examples/nba_roster.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    ItemCatalog,
    PackageRecommender,
    SimulatedUser,
)
from repro.core.ranking import (
    rank_packages_exp,
    rank_packages_mpo,
    rank_packages_tkp,
)
from repro.data.nba import generate_nba_dataset
from repro.simulation.session import ElicitationSession


def main() -> None:
    rng = np.random.default_rng(11)

    # --- The player table: 600 players, 6 named career-statistics features. --
    matrix, feature_names = generate_nba_dataset(
        num_players=600, num_features=6, rng=rng, return_feature_names=True
    )
    catalog = ItemCatalog(matrix, feature_names=feature_names)
    print("Selected features:", feature_names)

    # Rosters are scored by the sum of counting stats and the average of
    # percentage-like stats.
    aggregations = [
        "avg" if name.endswith("_pct") else "sum" for name in feature_names
    ]
    profile = AggregateProfile(aggregations, feature_names=feature_names)

    config = ElicitationConfig(
        k=5,
        num_random=5,
        max_package_size=5,
        num_samples=120,
        sampler="mcmc",
        semantics="exp",
        # Keep interactive latency low: search a 15-sample subset of the pool
        # per round and bound the per-sample Top-k-Pkg work.
        search_sample_budget=15,
        search_beam_width=400,
        search_items_cap=120,
        seed=1,
    )
    recommender = PackageRecommender(catalog, profile, config)

    # A simulated fantasy manager with a hidden taste over the features.
    user = SimulatedUser.random(recommender.evaluator, rng=rng)
    print("Hidden manager preferences:", np.round(user.true_utility.weights, 3))
    print()

    # --- Closed-loop elicitation session (Figure 8 protocol). ---------------
    session = ElicitationSession(recommender, user, max_rounds=10)
    result = session.run(compute_regret=True)
    print(f"Session converged: {result.converged} "
          f"after {result.clicks_to_convergence} clicks "
          f"({result.rounds_run} rounds); final regret {result.final_regret:.4f}")
    print()

    # --- Compare ranking semantics on the same posterior. --------------------
    pool = recommender.sample_pool()
    candidates = recommender.evaluator.random_packages(300, rng=rng)
    vectors = recommender.evaluator.vectors(candidates)

    exp_top = [i for i, _ in rank_packages_exp(vectors, pool, 5)]
    tkp_top = [i for i, _ in rank_packages_tkp(vectors, pool, 5)]
    mpo_top, mpo_probability = rank_packages_mpo(vectors, pool, 5)

    def describe(indices):
        return [tuple(candidates[i].items) for i in indices]

    print("Top-5 candidate rosters under each ranking semantics:")
    print("  EXP:", describe(exp_top))
    print("  TKP:", describe(tkp_top))
    print(f"  MPO: {describe(mpo_top)} (probability {mpo_probability:.2f})")
    overlap = len(set(exp_top) & set(tkp_top)) / 5
    print(f"EXP/TKP overlap: {overlap:.0%} — correlated but not always identical.")


if __name__ == "__main__":
    main()
