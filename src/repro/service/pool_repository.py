"""Fingerprint-partitioned pool storage: the serving stack's state layer.

Before this module, pool state was a single in-process dict: one flat
:class:`~repro.service.pool_cache.SamplePoolCache` owned by the engine, every
snapshot embedding its full ``num_samples × m`` pool, and the hottest pools
(empty prefix, common first clicks) rebuilt on every cold start.  This module
makes fingerprint-keyed pool storage a first-class, partitioned layer — the
same move log-structured cloud stores make when they partition state by key
to scale writes, and multi-petabyte designs make when they pin hot
partitions:

* :class:`PoolRepository` — the interface every layer that touches pools goes
  through: ``get`` / ``put`` / ``pin`` / ``evict`` / ``fill`` keyed by the
  engine's pool keys (``n<count>:<ConstraintSet.fingerprint()>``).
* :class:`ShardedPoolRepository` — consistent-hashes keys across N
  :class:`PoolShard` partitions.  Each shard owns its pools, its LRU budget,
  its pinned (eviction-exempt) set, and its sampler construction, so cache
  fills for different shards are independent work items that a
  :class:`ShardBackend` can run in parallel.
* :class:`ShardBackend` — where shard work executes:
  :class:`InlineShardBackend` (sequential, zero overhead, the default),
  :class:`ThreadShardBackend` (one pool of ``num_shards`` workers), or
  :class:`ProcessShardBackend` (a persistent worker-process pool).  Shards
  describe fills as picklable :class:`~repro.sampling.fillspec.FillSpec`
  records rather than closures, which is what lets the process backend ship
  a fill across the process boundary and resolve it worker-side with the
  module-level :func:`~repro.sampling.fillspec.build_sampler`.
* :class:`WarmStartPlanner` — precomputes and **pins** the always-hot pools
  (the empty-prefix pool and the top-K first-click pools) at engine start, so
  cold sessions never sample.

**Determinism is the load-bearing design decision.**  A fill for key ``k``
draws from a sampler seeded by ``k`` (the engine's factory derives the RNG
from its own seed plus the key), never from a shared stream.  Pool contents
therefore depend only on the key — not on which shard filled it, in what
order, on how many shards exist, or whether fills ran threaded or inline —
which is what makes 1-shard and 4-shard engines produce bit-identical
recommendations (pinned by ``tests/test_pool_repository.py`` and
``benchmarks/test_bench_sharding.py``) and makes a snapshot's pool
re-derivable from its fingerprint reference alone when every cache misses.

Consistent hashing (a 64-bit ring with virtual nodes) rather than modulo
keeps the partition map stable under resizing: going from N to N+1 shards
moves ~1/(N+1) of the keys instead of nearly all of them, so a warmed
deployment can grow without refilling the world.
"""

from __future__ import annotations

import abc
import bisect
import hashlib
import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.fillspec import (
    FillContext,
    FillSpec,
    execute_fill,
    get_fill_context,
    known_fill_contexts,
    register_fill_context,
)
from repro.service.pool_cache import CacheStats, SamplePoolCache

__all__ = [
    "FillSpecFactory",
    "PoolFillJob",
    "PoolRepository",
    "PoolShard",
    "SamplerFactory",
    "ShardBackend",
    "InlineShardBackend",
    "ThreadShardBackend",
    "ProcessShardBackend",
    "ShardedPoolRepository",
    "WarmStartPlanner",
    "WarmStartReport",
    "build_shard_backend",
    "parse_shard_backend",
]

#: Deprecated engine-supplied sampler construction: ``factory(pool_key) ->
#: Sampler``.  A closure over the live engine — it executes anywhere
#: in-process and nowhere else, which is exactly why it was replaced by the
#: picklable :class:`~repro.sampling.fillspec.FillSpec` seam below.  Still
#: accepted (with a ``DeprecationWarning``) so existing call sites keep
#: working on the inline and thread backends.
SamplerFactory = Callable[[str], Sampler]

#: The redesigned fill seam: ``factory(pool_key, constraints, count) ->
#: FillSpec``.  The factory runs engine-side (it folds the engine's seed root
#: and context digest into the spec); the spec then resolves anywhere —
#: inline, a shard thread, or a worker process — via the module-level
#: :func:`~repro.sampling.fillspec.build_sampler`.
FillSpecFactory = Callable[[str, ConstraintSet, int], FillSpec]

#: Names accepted by :func:`build_shard_backend` (each optionally suffixed
#: with a worker-count override, e.g. ``"process:4"``).
SHARD_BACKEND_NAMES = ("inline", "thread", "process")


def _hash64(text: str) -> int:
    """A stable (process-independent) 64-bit hash used for the ring."""
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class PoolFillJob:
    """One pool build request: draw ``count`` samples valid under ``constraints``.

    ``spec`` optionally carries a pre-built :class:`FillSpec` for the job;
    when absent, the owning shard derives one from its ``spec_factory`` (or
    falls back to the deprecated sampler-factory closure).
    """

    key: str
    constraints: ConstraintSet
    count: int
    spec: Optional[FillSpec] = None


#: One backend work item: the shard that owns the jobs, and its batch.
ShardFillBatch = Tuple["PoolShard", Sequence[PoolFillJob]]


# ================================================================== backends
class ShardBackend(abc.ABC):
    """Execution strategy for per-shard work items."""

    #: Human-readable backend name (reported in engine stats).
    name: str = "base"

    #: Optional :class:`~repro.obs.Telemetry` facade; backends that recover
    #: from worker failures fire alarms through it when set (see
    #: :meth:`ShardedPoolRepository.attach_telemetry`).
    telemetry = None

    @abc.abstractmethod
    def map(self, calls: Sequence[Callable[[], dict]]) -> List[dict]:
        """Run every zero-argument call and return their results in order."""

    def run_fill_batches(
        self, batches: Sequence[ShardFillBatch]
    ) -> Dict[str, SamplePool]:
        """Run per-shard fill batches; returns ``{job.key: pool}`` merged.

        The default implementation wraps each batch in a closure and runs it
        through :meth:`map` — correct for any in-process backend.  Backends
        that cross a process boundary override this to extract the picklable
        :class:`FillSpec` from each job instead of shipping closures.
        """
        calls = [
            # Bind per-iteration values as defaults: late-binding closures
            # would all see the last batch.
            lambda shard=shard, jobs=list(jobs): shard.fill_jobs(jobs)
            for shard, jobs in batches
        ]
        results: Dict[str, SamplePool] = {}
        for partial in self.map(calls):
            results.update(partial)
        return results

    def close(self) -> None:
        """Release any execution resources (idempotent; default no-op)."""


class InlineShardBackend(ShardBackend):
    """Run shard work sequentially on the calling thread (the default).

    Zero overhead and trivially deterministic — the right choice for
    single-shard repositories, tests, and single-core hosts.
    """

    name = "inline"

    def map(self, calls: Sequence[Callable[[], dict]]) -> List[dict]:
        return [call() for call in calls]


class ThreadShardBackend(ShardBackend):
    """Run shard work on a shared thread pool (one worker per shard).

    Fills for different shards proceed concurrently; every fill builds its
    own sampler (own RNG), so no sampler state is shared across threads and
    results are identical to the inline backend.  On a multi-core host the
    numpy-heavy block draws overlap; with one core this still bounds tail
    latency (no shard waits behind another's Python-level fallback loop) but
    cannot beat inline wall-clock.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be > 0 or None, got {max_workers}")
        self.max_workers = max_workers
        self._executor: Optional[ThreadPoolExecutor] = None

    def map(self, calls: Sequence[Callable[[], dict]]) -> List[dict]:
        if len(calls) <= 1:  # nothing to overlap; skip the executor round-trip
            return [call() for call in calls]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="pool-shard"
            )
        return list(self._executor.map(lambda call: call(), calls))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


# -------------------------------------------------------- process worker side
def _process_worker_init(contexts: Sequence[FillContext]) -> None:
    """Worker-pool initializer: register the shipped fill contexts.

    Runs once per worker process.  Contexts are content-addressed, so a
    forked worker that inherited the parent's registry re-registers them as
    no-ops; a spawned worker starts empty and this is its only copy.
    """
    for context in contexts:
        register_fill_context(context)


def _process_fill_batch(
    items: Sequence[Tuple[FillSpec, Optional[FillContext]]],
) -> List[Tuple[str, np.ndarray, np.ndarray, dict]]:
    """Run one shard's fill batch in a worker process.

    Returns plain ``(key, samples, weights, stats)`` tuples — arrays and
    dicts, never live :class:`SamplePool` objects — re-hydrated engine-side.
    ``stats`` gains the worker's PID so tests (and operators) can verify
    fills actually left the engine process.
    """
    results = []
    for spec, context in items:
        pool = execute_fill(spec, context)
        stats = dict(pool.stats)
        stats["fill_worker_pid"] = os.getpid()
        results.append((spec.key, pool.samples, pool.weights, stats))
    return results


class ProcessShardBackend(ShardBackend):
    """Run shard fill batches on a persistent pool of worker processes.

    The backend the :class:`FillSpec` seam exists for: each batch is reduced
    to picklable specs, shipped to a :class:`ProcessPoolExecutor`, resolved
    worker-side by the module-level
    :func:`~repro.sampling.fillspec.build_sampler`, and returned as plain
    weight/sample arrays re-hydrated into :class:`SamplePool` engine-side.
    Because fills are key-deterministic, escaping the GIL this way changes
    *where* a pool is computed but never *what* it contains.

    Shared state ships once: the first dispatch snapshots every registered
    :class:`FillContext` and hands it to the worker initializer; workers
    cache contexts by digest, so steady-state specs are a few hundred bytes.
    A context registered *after* the pool spawned rides along with its spec.

    Worker death (OOM kill, segfault, ``os._exit``) surfaces as
    ``BrokenProcessPool``; the backend discards the broken pool, retries the
    whole dispatch once on a fresh pool, and if that also dies falls back to
    executing the specs inline — the shard is never poisoned and the fill
    result is identical either way (``worker_restarts`` and
    ``inline_fallbacks`` count the recoveries).
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be > 0 or None, got {max_workers}")
        self.max_workers = max_workers
        self.start_method = start_method
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shipped: frozenset = frozenset()
        self.batches_dispatched = 0
        self.worker_restarts = 0
        self.inline_fallbacks = 0

    def map(self, calls: Sequence[Callable[[], dict]]) -> List[dict]:
        raise NotImplementedError(
            "ProcessShardBackend cannot run arbitrary closures: closures "
            "capture live objects and cannot cross the process boundary; "
            "fills go through run_fill_batches() as picklable FillSpecs"
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            contexts = list(known_fill_contexts().values())
            self._shipped = frozenset(c.digest for c in contexts)
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_process_worker_init,
                initargs=(contexts,),
            )
        return self._executor

    def _payloads(
        self, batches: Sequence[ShardFillBatch]
    ) -> List[Tuple["PoolShard", List[Tuple[FillSpec, Optional[FillContext]]]]]:
        """Reduce each batch to picklable ``(spec, context?)`` items."""
        payloads = []
        for shard, jobs in batches:
            items = []
            for job in jobs:
                spec = shard.spec_for(job)
                if spec is None:
                    raise RuntimeError(
                        "ProcessShardBackend requires FillSpec-based fills: "
                        "a legacy sampler_factory is a closure over the live "
                        "engine and cannot cross the process boundary — "
                        "construct the repository with spec_factory=..."
                    )
                # Contexts the initializer already shipped live worker-side;
                # anything registered since rides along with its spec.
                context = (
                    None
                    if spec.context_digest in self._shipped
                    else get_fill_context(spec.context_digest)
                )
                items.append((spec, context))
            payloads.append((shard, items))
        return payloads

    def run_fill_batches(
        self, batches: Sequence[ShardFillBatch]
    ) -> Dict[str, SamplePool]:
        batches = [(shard, list(jobs)) for shard, jobs in batches if jobs]
        if not batches:
            return {}
        self._ensure_executor()  # fix the shipped-context set before _payloads
        payloads = self._payloads(batches)
        for _attempt in range(2):
            executor = self._ensure_executor()
            submitted = [
                (shard, executor.submit(_process_fill_batch, items))
                for shard, items in payloads
            ]
            try:
                results: Dict[str, SamplePool] = {}
                for shard, future in submitted:
                    for key, samples, weights, stats in future.result():
                        pool = SamplePool(samples, weights, stats)
                        shard.record_fill(pool)
                        results[key] = pool
                self.batches_dispatched += len(payloads)
                return results
            except BrokenProcessPool:
                # A worker died mid-fill and took the pool down with it.
                # Discard the carcass; the loop retries once on a fresh pool.
                self.worker_restarts += 1
                if self.telemetry is not None:
                    self.telemetry.alarm(
                        "worker_restart", backend=self.name, attempt=_attempt + 1
                    )
                executor.shutdown(wait=False)
                self._executor = None
        # Two pools died in a row — something environmental (not one flaky
        # worker).  Fills are pure functions of their specs, so run them
        # inline: slower, but identical output and the shard stays healthy.
        self.inline_fallbacks += 1
        if self.telemetry is not None:
            self.telemetry.alarm(
                "fill_inline_fallback",
                backend=self.name,
                specs=sum(len(items) for _shard, items in payloads),
            )
        results = {}
        for shard, items in payloads:
            for spec, context in items:
                pool = execute_fill(spec, context)
                shard.record_fill(pool)
                results[spec.key] = pool
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def parse_shard_backend(name: str) -> Tuple[str, Optional[int]]:
    """Split a backend name into ``(base, worker_override)``.

    Accepts ``"inline"``, ``"thread"``, ``"process"``, each optionally
    suffixed ``":N"`` to override the worker count (e.g. ``"process:4"``).
    Unknown names raise a ``ValueError`` that lists the valid backends.
    """
    base, _, suffix = str(name).partition(":")
    workers: Optional[int] = None
    if suffix:
        try:
            workers = int(suffix)
        except ValueError:
            raise ValueError(
                f"shard backend worker-count override must be an integer, "
                f"got {name!r} (expected e.g. 'process:4')"
            ) from None
        if workers <= 0:
            raise ValueError(
                f"shard backend worker-count override must be > 0, got {name!r}"
            )
    if base not in SHARD_BACKEND_NAMES:
        raise ValueError(
            f"unknown shard backend {name!r}: valid backends are "
            + ", ".join(repr(n) for n in SHARD_BACKEND_NAMES)
            + " (optionally with a worker-count override, e.g. 'process:4')"
        )
    return base, workers


def build_shard_backend(
    name: str, num_shards: int, max_workers: Optional[int] = None
) -> ShardBackend:
    """A backend instance from its configured name.

    Worker count precedence: an explicit ``max_workers`` argument, then a
    ``":N"`` suffix in the name, then one worker per shard.
    """
    base, override = parse_shard_backend(name)
    workers = (
        max_workers
        if max_workers is not None
        else (override if override is not None else num_shards)
    )
    if base == "inline":
        return InlineShardBackend()
    if base == "thread":
        return ThreadShardBackend(max_workers=workers)
    return ProcessShardBackend(max_workers=workers)


# ================================================================= interface
class PoolRepository(abc.ABC):
    """Keyed storage *and* build service for shared sample pools.

    Every layer of the serving stack that touches pools — the engine's
    per-session provider, ``recommend_many``'s batched prefetch, snapshot
    restore, the warm-start planner — goes through this interface, so pool
    placement (one dict, N shards, N processes) is invisible above it.
    """

    @abc.abstractmethod
    def get(self, key: str) -> Optional[SamplePool]:
        """The pool for ``key`` (refreshing recency and hit statistics)."""

    @abc.abstractmethod
    def peek(self, key: str) -> Optional[SamplePool]:
        """Like :meth:`get` but without touching hit/miss statistics."""

    @abc.abstractmethod
    def put(self, key: str, pool: SamplePool) -> None:
        """Store (or refresh) a pool under ``key``."""

    @abc.abstractmethod
    def pin(self, key: str, pool: Optional[SamplePool] = None) -> None:
        """Exempt ``key`` from eviction (inserting ``pool`` if given)."""

    @abc.abstractmethod
    def unpin(self, key: str) -> None:
        """Return a pinned pool to ordinary LRU management."""

    @abc.abstractmethod
    def evict(self, key: str) -> bool:
        """Drop a pool (pinned or not); returns whether one existed."""

    @abc.abstractmethod
    def record_miss(self, key: str) -> None:
        """Count a miss against ``key``'s shard without a lookup."""

    @abc.abstractmethod
    def fill_one(self, key: str, constraints: ConstraintSet, count: int) -> SamplePool:
        """Build one pool on its owning shard (inline; not stored)."""

    @abc.abstractmethod
    def fill_many(self, jobs: Sequence[PoolFillJob]) -> Dict[str, SamplePool]:
        """Build many pools, grouped per shard and run via the backend.

        Returns ``{job.key: pool}``; pools are *returned*, not stored — the
        caller decides what to cache (the engine stamps builds first).
        """

    @abc.abstractmethod
    def __contains__(self, key: str) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @property
    @abc.abstractmethod
    def stats(self) -> CacheStats:
        """Aggregated hit/miss/eviction/put counters across the whole store."""

    @property
    @abc.abstractmethod
    def samples_saved(self) -> int:
        """Total sample draws avoided by serving pools from storage."""


# ===================================================================== shards
class PoolShard:
    """One partition: an LRU pool cache, a pinned set, and fill execution.

    The shard's ``spec_factory`` is the only engine-derived state it holds,
    and it produces *data* (picklable :class:`FillSpec` records), not live
    samplers — which is what lets a process backend ship the shard's fills
    across the process boundary.  The deprecated ``sampler_factory`` closure
    is still honoured for in-process backends.
    """

    def __init__(
        self,
        index: int,
        capacity: int,
        sampler_factory: Optional[SamplerFactory] = None,
        spec_factory: Optional[FillSpecFactory] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if sampler_factory is None and spec_factory is None:
            raise ValueError(
                "PoolShard needs a spec_factory (or the legacy sampler_factory)"
            )
        self.index = index
        self.capacity = int(capacity)
        self.cache = SamplePoolCache(capacity)
        self.pinned: Dict[str, SamplePool] = {}
        self.sampler_factory = sampler_factory
        self.spec_factory = spec_factory
        self.fills = 0
        self.samples_filled = 0
        # Telemetry instruments (resolved once per shard in attach_telemetry
        # so record_fill — which runs on worker threads — pays no label
        # lookup; the instruments themselves are thread-safe).
        self._fill_counter = None
        self._fill_samples = None
        self._fill_latency = None

    def attach_telemetry(self, telemetry) -> None:
        """Bind this shard's fill instruments to ``telemetry``'s registry."""
        registry = telemetry.registry
        shard_label = str(self.index)
        self._fill_counter = registry.counter(
            "repro_pool_fills_total",
            "Pools built, by shard",
            labels=("shard",),
        ).labels(shard=shard_label)
        self._fill_samples = registry.counter(
            "repro_pool_samples_filled_total",
            "Posterior samples drawn by pool fills, by shard",
            labels=("shard",),
        ).labels(shard=shard_label)
        self._fill_latency = registry.histogram(
            "repro_pool_fill_seconds",
            "Wall-clock seconds per pool fill, by shard",
            labels=("shard",),
        ).labels(shard=shard_label)

    # ---------------------------------------------------------------- storage
    def get(self, key: str) -> Optional[SamplePool]:
        pool = self.pinned.get(key)
        if pool is not None:
            # A pinned hit is a cache win like any other: count it (and the
            # sampling it saved) in the shard's ordinary statistics.
            self.cache.stats.hits += 1
            self.cache.samples_saved += pool.size
            return pool
        return self.cache.get(key)

    def peek(self, key: str) -> Optional[SamplePool]:
        pool = self.pinned.get(key)
        if pool is not None:
            return pool
        return self.cache.peek(key)

    def put(self, key: str, pool: SamplePool) -> None:
        if key in self.pinned:
            self.pinned[key] = pool  # a rebuilt pool replaces the pinned copy
            return
        self.cache.put(key, pool)

    def pin(self, key: str, pool: Optional[SamplePool] = None) -> None:
        if self.capacity == 0:
            return  # a disabled repository stores nothing, pinned or not
        # Always lift any LRU copy out first: a key must live in exactly one
        # of the two tables, or evict()/__len__ would see duplicates.
        cached = self.cache.pop(key)
        if pool is None:
            pool = cached
            if pool is None:
                if key in self.pinned:
                    return
                raise KeyError(f"cannot pin unknown pool key {key!r}")
        self.pinned[key] = pool

    def unpin(self, key: str) -> None:
        pool = self.pinned.pop(key, None)
        if pool is not None:
            self.cache.put(key, pool)

    def evict(self, key: str) -> bool:
        if self.pinned.pop(key, None) is not None:
            return True
        return self.cache.pop(key) is not None

    def __contains__(self, key: str) -> bool:
        return key in self.pinned or key in self.cache

    def __len__(self) -> int:
        return len(self.pinned) + len(self.cache)

    def keys(self) -> List[str]:
        return list(self.pinned) + self.cache.keys()

    # ------------------------------------------------------------------ fills
    def spec_for(self, job: PoolFillJob) -> Optional[FillSpec]:
        """The picklable spec describing ``job``, or ``None`` on the legacy path.

        Precedence: a spec the job already carries, then the shard's
        ``spec_factory``.  ``None`` means only the deprecated in-process
        sampler-factory closure can run this fill.
        """
        if job.spec is not None:
            return job.spec
        if self.spec_factory is not None:
            return self.spec_factory(job.key, job.constraints, job.count)
        return None

    def record_fill(self, pool: SamplePool) -> None:
        """Count a completed fill against this shard's load statistics.

        Thread-shard backends call this from worker threads, so the attached
        telemetry instruments (if any) must be — and are — thread-safe.
        """
        self.fills += 1
        self.samples_filled += pool.size
        if self._fill_counter is not None:
            self._fill_counter.inc()
            self._fill_samples.inc(pool.size)
            seconds = pool.stats.get("fill_seconds")
            if seconds is not None:
                self._fill_latency.observe(float(seconds))

    def fill(self, job: PoolFillJob) -> SamplePool:
        """Build one pool with a sampler seeded for the job's key."""
        spec = self.spec_for(job)
        if spec is not None:
            pool = execute_fill(spec)
        else:
            started = time.perf_counter()
            sampler = self.sampler_factory(job.key)
            pool = sampler.sample(job.count, job.constraints)
            pool.stats["fill_seconds"] = time.perf_counter() - started
        self.record_fill(pool)
        return pool

    def fill_jobs(self, jobs: Sequence[PoolFillJob]) -> Dict[str, SamplePool]:
        """Run a batch of fills sequentially on this shard."""
        return {job.key: self.fill(job) for job in jobs}


# ================================================================ repository
class ShardedPoolRepository(PoolRepository):
    """Pools consistent-hashed across N shards with per-shard LRU budgets.

    Parameters
    ----------
    spec_factory:
        ``factory(pool_key, constraints, count) -> FillSpec``; the engine
        folds its seed root into the spec's derived seed, which is how the
        determinism contract (module docstring) is honoured.  Required for
        the process backend.
    sampler_factory:
        Deprecated in-process alternative: ``factory(pool_key) -> Sampler``.
        Still works on the inline and thread backends (with a
        ``DeprecationWarning``); a process backend rejects it because a
        closure over the live engine cannot be pickled.
    num_shards:
        Number of partitions.  One shard with the inline backend reproduces
        the old single-cache behaviour exactly.
    capacity:
        *Total* LRU budget, split evenly across shards (each shard gets
        ``ceil(capacity / num_shards)``); ``0`` disables storage entirely —
        every ``get`` misses and ``put``/``pin`` are no-ops — which is how the
        per-session baseline runs without branching at call sites.  Pinned
        pools do not count against the LRU budget.
    backend:
        Where per-shard fill batches execute; default inline.
    virtual_nodes:
        Ring points per shard.  More points smooth the key distribution;
        the default (64) keeps the worst shard within a few percent of fair.
    """

    def __init__(
        self,
        sampler_factory: Optional[SamplerFactory] = None,
        num_shards: int = 1,
        capacity: int = 512,
        backend: Optional[ShardBackend] = None,
        virtual_nodes: int = 64,
        spec_factory: Optional[FillSpecFactory] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be > 0, got {num_shards}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if virtual_nodes <= 0:
            raise ValueError(f"virtual_nodes must be > 0, got {virtual_nodes}")
        if sampler_factory is not None and spec_factory is not None:
            raise ValueError(
                "pass either spec_factory or the legacy sampler_factory, not both"
            )
        if sampler_factory is None and spec_factory is None:
            raise ValueError(
                "a spec_factory (or the legacy sampler_factory) is required"
            )
        if sampler_factory is not None:
            warnings.warn(
                "sampler_factory closures are deprecated: pass spec_factory= "
                "(a FillSpec builder) so fills are plain data and can run on "
                "the process shard backend",
                DeprecationWarning,
                stacklevel=2,
            )
        self.capacity = int(capacity)
        per_shard = -(-capacity // num_shards) if capacity else 0  # ceil div
        self.shards = [
            PoolShard(
                index,
                per_shard,
                sampler_factory=sampler_factory,
                spec_factory=spec_factory,
            )
            for index in range(num_shards)
        ]
        self.backend = backend if backend is not None else InlineShardBackend()
        ring = sorted(
            (_hash64(f"shard-{index}#{replica}"), index)
            for index in range(num_shards)
            for replica in range(virtual_nodes)
        )
        self._ring_points = [point for point, _index in ring]
        self._ring_shards = [index for _point, index in ring]
        self.fill_batches = 0
        self.multi_shard_fill_batches = 0
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`~repro.obs.Telemetry` facade through the topology.

        Each shard resolves its labeled fill instruments once, and the
        backend gets the facade so worker-restart / inline-fallback recovery
        paths can fire alarms.
        """
        self.telemetry = telemetry
        for shard in self.shards:
            shard.attach_telemetry(telemetry)
        self.backend.telemetry = telemetry

    # ----------------------------------------------------------------- routing
    def shard_for(self, key: str) -> PoolShard:
        """The shard that owns ``key`` (first ring point at or after its hash)."""
        if len(self.shards) == 1:
            return self.shards[0]
        position = bisect.bisect_right(self._ring_points, _hash64(key))
        if position == len(self._ring_points):
            position = 0  # wrap around the ring
        return self.shards[self._ring_shards[position]]

    # ----------------------------------------------------------------- storage
    def get(self, key: str) -> Optional[SamplePool]:
        return self.shard_for(key).get(key)

    def peek(self, key: str) -> Optional[SamplePool]:
        return self.shard_for(key).peek(key)

    def put(self, key: str, pool: SamplePool) -> None:
        self.shard_for(key).put(key, pool)

    def pin(self, key: str, pool: Optional[SamplePool] = None) -> None:
        self.shard_for(key).pin(key, pool)

    def unpin(self, key: str) -> None:
        self.shard_for(key).unpin(key)

    def evict(self, key: str) -> bool:
        return self.shard_for(key).evict(key)

    def record_miss(self, key: str) -> None:
        self.shard_for(key).cache.stats.misses += 1

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def keys(self) -> List[str]:
        """Every stored key (pinned first, then LRU order, shard by shard)."""
        return [key for shard in self.shards for key in shard.keys()]

    def pinned_keys(self) -> List[str]:
        """Keys currently exempt from eviction."""
        return [key for shard in self.shards for key in shard.pinned]

    # ------------------------------------------------------------------- fills
    def fill_one(self, key: str, constraints: ConstraintSet, count: int) -> SamplePool:
        return self.shard_for(key).fill(PoolFillJob(key, constraints, count))

    def fill_many(self, jobs: Sequence[PoolFillJob]) -> Dict[str, SamplePool]:
        jobs = list(jobs)
        if not jobs:
            return {}
        by_shard: Dict[int, List[PoolFillJob]] = {}
        for job in jobs:
            by_shard.setdefault(self.shard_for(job.key).index, []).append(job)
        self.fill_batches += 1
        if len(by_shard) > 1:
            self.multi_shard_fill_batches += 1
        return self.backend.run_fill_batches(
            [(self.shards[index], batch) for index, batch in by_shard.items()]
        )

    # ------------------------------------------------------------------- stats
    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss/eviction/put counters across every shard."""
        total = CacheStats()
        for shard in self.shards:
            stats = shard.cache.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.evictions += stats.evictions
            total.puts += stats.puts
        return total

    @property
    def samples_saved(self) -> int:
        """Total sample draws avoided by cache and pinned hits."""
        return sum(shard.cache.samples_saved for shard in self.shards)

    @property
    def fills(self) -> int:
        """Total pools built across every shard."""
        return sum(shard.fills for shard in self.shards)

    def describe(self) -> dict:
        """Topology and per-shard load, for :meth:`EngineStats.as_dict`."""
        backend_extras = {
            counter: getattr(self.backend, counter)
            for counter in (
                "batches_dispatched",
                "worker_restarts",
                "inline_fallbacks",
            )
            if hasattr(self.backend, counter)
        }
        return {
            "num_shards": len(self.shards),
            "backend": self.backend.name,
            **backend_extras,
            "capacity": self.capacity,
            "pinned": len(self.pinned_keys()),
            "fills": self.fills,
            "fill_batches": self.fill_batches,
            "multi_shard_fill_batches": self.multi_shard_fill_batches,
            "per_shard": [
                {
                    "shard": shard.index,
                    "entries": len(shard),
                    "pinned": len(shard.pinned),
                    "fills": shard.fills,
                    "hits": shard.cache.stats.hits,
                    "misses": shard.cache.stats.misses,
                }
                for shard in self.shards
            ],
        }

    def close(self) -> None:
        """Release the backend's execution resources."""
        self.backend.close()


# ================================================================ warm start
@dataclass
class WarmStartReport:
    """What one warm-start pass precomputed.

    ``first_clicks_skipped`` is True when the configuration presents private
    exploration packages (``num_random > 0``): every real first click then
    induces preferences against packages no planner can foresee, so the
    first-click pools were not warmed (only the empty-prefix pool was).
    """

    warmed_keys: List[str]
    pools_filled: int
    first_click_sets: int
    first_clicks_skipped: bool = False

    def __len__(self) -> int:
        return len(self.warmed_keys)


@dataclass
class LogWarmStartReport:
    """What one log-mined warm-start pass precomputed.

    ``prefixes_mined`` counts every distinct constraint-set prefix observed
    in the log; ``warmed_keys`` are the (up to ``top_n``) most frequent ones
    whose pools are now filled and pinned.
    """

    warmed_keys: List[str]
    pools_filled: int
    prefixes_mined: int

    def __len__(self) -> int:
        return len(self.warmed_keys)


class WarmStartPlanner:
    """Precompute and pin the always-hot pools so cold sessions never sample.

    Two pool families are always hot in elicitation traffic: the
    *empty-prefix* pool (every new session's first round) and the pools one
    click away from it (round two of every session that clicked a recommended
    package).  The planner derives both from the engine's own machinery:

    1. fill the empty-prefix pool and pin it;
    2. compute its ranked top-k list exactly as a session would (same search
       budget, same semantics) and park it in the engine's top-k cache — cold
       sessions skip the search too;
    3. for each of the top ``first_clicks`` recommended packages, derive the
       constraint set that click induces
       (:func:`~repro.core.elicitation.click_constraint_set` — identical to a
       fresh session's feedback), fill all those pools in one
       :meth:`~ShardedPoolRepository.fill_many` (grouped per shard, so a
       parallel backend overlaps them), and pin them.

    The first-click sets assume the presented list *is* the recommended list
    (``num_random == 0``).  With ``num_random > 0`` every session presents
    private exploration packages, so a real first click — even one on a
    recommended package — induces ``clicked ≻ random_i`` preferences whose
    fingerprint no planner can foresee; warming those pools would pin work
    no session can ever hit.  The planner therefore warms only the
    empty-prefix pool in that configuration and reports
    ``first_clicks_skipped=True``.  Pinned pools are exempt from LRU
    eviction and are shared through the repository like any other pool.
    """

    def __init__(self, engine, first_clicks: Optional[int] = None) -> None:
        if first_clicks is not None and first_clicks < 0:
            raise ValueError(f"first_clicks must be >= 0, got {first_clicks}")
        self.engine = engine
        self.first_clicks = (
            first_clicks
            if first_clicks is not None
            else engine.config.elicitation.k
        )

    def warm(self) -> WarmStartReport:
        """Fill and pin the hot pools; returns what was warmed."""
        # Local import: the planner is engine-facing, and importing the
        # recommender at module load would cycle service -> core -> service.
        from repro.core.elicitation import PackageRecommender, click_constraint_set

        engine = self.engine
        repository: PoolRepository = engine.pool_repository
        # A ShardedPoolRepository with capacity 0 is storage-disabled; custom
        # repositories without a capacity attribute are assumed pinnable.
        if getattr(repository, "capacity", None) == 0:
            raise ValueError(
                "warm start requires a pool cache (pool_cache_size > 0): "
                "with storage disabled there is nowhere to pin the warm pools"
            )
        elicitation = engine.config.elicitation
        count = elicitation.num_samples
        # Exploration packages are per-session randomness: with num_random > 0
        # no real first-click fingerprint can match an enumerated one, so
        # filling those pools would pin dead weight (see the class docstring).
        first_clicks = self.first_clicks if elicitation.num_random == 0 else 0
        warmed: List[str] = []
        filled = 0

        empty = ConstraintSet.empty(engine.catalog.num_features)
        empty_key = engine._pool_key(empty, count)
        empty_pool = repository.peek(empty_key)
        if empty_pool is None:
            empty_pool = engine._stamp_pool(
                repository.fill_one(empty_key, empty, count)
            )
            filled += 1
        repository.pin(empty_key, empty_pool)
        warmed.append(empty_key)

        # The round-one "exploit" list every cold session will be served: a
        # probe recommender with the engine's own elicitation config (and the
        # warmed pool injected) computes exactly what any session would.
        probe = PackageRecommender(
            engine.catalog,
            engine.profile,
            config=elicitation,
            prior=engine.prior,
            predicates=engine.predicates,
        )
        probe.set_pool(empty_pool)
        ranked = probe.current_top_k()
        if engine.config.topk_cache_size > 0:
            engine._topk_cache.put(
                engine._topk_key_for(empty_key, empty_pool, elicitation),
                tuple(ranked),
            )

        jobs: List[PoolFillJob] = []
        for clicked in ranked[:first_clicks]:
            constraints = click_constraint_set(engine.evaluator, clicked, ranked)
            key = engine._pool_key(constraints, count)
            if key in repository or any(job.key == key for job in jobs):
                continue
            jobs.append(PoolFillJob(key, constraints, count))
        for job in jobs:
            warmed.append(job.key)
        if jobs:
            pools = repository.fill_many(jobs)
            for job in jobs:
                repository.pin(job.key, engine._stamp_pool(pools[job.key]))
            filled += len(jobs)

        engine.pools_warmed += filled
        return WarmStartReport(
            warmed_keys=warmed,
            pools_filled=filled,
            first_click_sets=len(jobs),
            first_clicks_skipped=(
                self.first_clicks > 0 and elicitation.num_random > 0
            ),
        )

    def warm_from_log(self, store, top_n: int = 8) -> LogWarmStartReport:
        """Fill and pin the pools of the log's most frequent click prefixes.

        Where :meth:`warm` *enumerates* first clicks (and must skip the
        enumeration entirely when exploration packages make real first-click
        fingerprints unforeseeable), this pass mines the fingerprints that
        real sessions **actually produced** — exploration packages, depth-2+
        prefixes and all — from an event-log store
        (:func:`~repro.service.eventlog.mine_click_prefixes`), ranks them by
        session frequency, and fills the top ``top_n`` in one
        :meth:`~ShardedPoolRepository.fill_many` batch.  Fills are
        key-deterministic, so the warmed pools are bit-identical to the
        fresh fills a live miss would have produced.
        """
        from repro.service.eventlog import mine_click_prefixes

        if top_n < 0:
            raise ValueError(f"top_n must be >= 0, got {top_n}")
        engine = self.engine
        repository: PoolRepository = engine.pool_repository
        if getattr(repository, "capacity", None) == 0:
            raise ValueError(
                "warm start requires a pool cache (pool_cache_size > 0): "
                "with storage disabled there is nowhere to pin the warm pools"
            )
        count = engine.config.elicitation.num_samples
        mined = mine_click_prefixes(store, engine.evaluator)
        jobs: List[PoolFillJob] = []
        warmed: List[str] = []
        for stat in mined[:top_n]:
            key = engine._pool_key(stat.constraints, count)
            pool = repository.peek(key)
            if pool is not None:
                # Already live (e.g. pinned by an earlier pass): re-pin so it
                # survives LRU churn, but do not refill.
                repository.pin(key, pool)
                warmed.append(key)
                continue
            if any(job.key == key for job in jobs):
                continue
            jobs.append(PoolFillJob(key, stat.constraints, count))
        if jobs:
            pools = repository.fill_many(jobs)
            for job in jobs:
                repository.pin(job.key, engine._stamp_pool(pools[job.key]))
                warmed.append(job.key)
        engine.pools_warmed += len(jobs)
        return LogWarmStartReport(
            warmed_keys=warmed,
            pools_filled=len(jobs),
            prefixes_mined=len(mined),
        )
