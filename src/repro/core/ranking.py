"""Ranking semantics under utility-function uncertainty: EXP, TKP, MPO (§2.2, §4).

Given a pool of weight-vector samples, the desirability of packages can be
aggregated under three semantics studied in different communities:

* **EXP** — rank packages by expected utility ``E_w[w · p]``.
* **TKP** — rank packages by the probability of appearing among the top-σ
  packages over the weight distribution.
* **MPO** — return the single most probable *top-k list* (the list as a whole,
  not individual packages).

Two APIs are provided:

* the *candidate-space* functions (:func:`rank_packages_exp`,
  :func:`rank_packages_tkp`, :func:`rank_packages_mpo`) operate on an explicit
  matrix of candidate package feature vectors, which is how the paper's
  Figure 2 worked example and the sampled-package-space experiments work;
* :func:`rank_from_samples` aggregates per-sample ``Top-k-Pkg`` results the
  way §4 describes (utility sums / appearance counters / list counters, each
  weighted by importance weights when present).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packages import Package
from repro.sampling.base import SamplePool
from repro.topk.package_search import PackageSearchResult
from repro.utils.validation import require_matrix


class RankingSemantics(enum.Enum):
    """The three ranking semantics supported by the system."""

    EXP = "exp"
    TKP = "tkp"
    MPO = "mpo"

    @classmethod
    def parse(cls, value) -> "RankingSemantics":
        """Coerce a string or member into a :class:`RankingSemantics`."""
        if isinstance(value, RankingSemantics):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValueError(
                    f"unknown ranking semantics {value!r}; expected one of "
                    f"{[m.value for m in cls]}"
                ) from None
        raise TypeError(f"cannot interpret {value!r} as RankingSemantics")


# --------------------------------------------------------------------------
# Candidate-space ranking (explicit package feature vectors)
# --------------------------------------------------------------------------
def _pool_to_arrays(pool) -> Tuple[np.ndarray, np.ndarray]:
    """Accept a SamplePool or a raw (samples, weights) pair."""
    if isinstance(pool, SamplePool):
        return pool.samples, pool.normalised_weights()
    samples, weights = pool
    samples = np.atleast_2d(np.asarray(samples, dtype=float))
    weights = np.asarray(weights, dtype=float).ravel()
    total = weights.sum()
    if total > 0:
        weights = weights / total
    return samples, weights


def _tie_broken_order(scores: np.ndarray) -> np.ndarray:
    """Indices sorted by decreasing score, ties broken by candidate index."""
    return np.lexsort((np.arange(scores.shape[0]), -scores))


def rank_packages_exp(
    candidate_vectors: np.ndarray,
    pool,
    k: int,
) -> List[Tuple[int, float]]:
    """Top-k candidates by expected utility under the sampled weight distribution.

    Returns ``(candidate_index, expected_utility)`` pairs in rank order.
    """
    vectors = require_matrix(candidate_vectors, "candidate_vectors")
    samples, weights = _pool_to_arrays(pool)
    if samples.shape[0] == 0:
        raise ValueError("the sample pool is empty")
    _check_k(k)
    utilities = vectors @ samples.T  # (num_candidates, num_samples)
    expected = utilities @ weights
    order = _tie_broken_order(expected)[:k]
    return [(int(i), float(expected[i])) for i in order]


def rank_packages_tkp(
    candidate_vectors: np.ndarray,
    pool,
    k: int,
    sigma: Optional[int] = None,
) -> List[Tuple[int, float]]:
    """Top-k candidates by probability of ranking among the top-σ packages.

    ``sigma`` defaults to ``k``.  Returns ``(candidate_index, probability)``
    pairs in rank order.
    """
    vectors = require_matrix(candidate_vectors, "candidate_vectors")
    samples, weights = _pool_to_arrays(pool)
    if samples.shape[0] == 0:
        raise ValueError("the sample pool is empty")
    _check_k(k)
    if sigma is None:
        sigma = k
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    sigma = min(sigma, vectors.shape[0])
    utilities = vectors @ samples.T
    probabilities = np.zeros(vectors.shape[0])
    for s in range(samples.shape[0]):
        column = utilities[:, s]
        top = _tie_broken_order(column)[:sigma]
        probabilities[top] += weights[s]
    order = _tie_broken_order(probabilities)[:k]
    return [(int(i), float(probabilities[i])) for i in order]


def rank_packages_mpo(
    candidate_vectors: np.ndarray,
    pool,
    k: int,
) -> Tuple[List[int], float]:
    """The most probable top-k list over the sampled weight distribution.

    Returns ``(list_of_candidate_indices, probability)`` where the list is the
    ordered top-k under the winning weight region.
    """
    vectors = require_matrix(candidate_vectors, "candidate_vectors")
    samples, weights = _pool_to_arrays(pool)
    if samples.shape[0] == 0:
        raise ValueError("the sample pool is empty")
    _check_k(k)
    k = min(k, vectors.shape[0])
    utilities = vectors @ samples.T
    list_probability: Dict[Tuple[int, ...], float] = defaultdict(float)
    for s in range(samples.shape[0]):
        column = utilities[:, s]
        top = tuple(int(i) for i in _tie_broken_order(column)[:k])
        list_probability[top] += weights[s]
    best_list, best_probability = max(
        list_probability.items(), key=lambda pair: (pair[1], tuple(-i for i in pair[0]))
    )
    return list(best_list), float(best_probability)


def _check_k(k: int) -> None:
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")


# --------------------------------------------------------------------------
# Aggregation of per-sample Top-k-Pkg results (§4)
# --------------------------------------------------------------------------
def rank_from_samples(
    per_sample_results: Sequence[PackageSearchResult],
    k: int,
    semantics=RankingSemantics.EXP,
    sample_weights: Optional[np.ndarray] = None,
) -> List[Package]:
    """Aggregate per-sample top-k results into a final top-k package list.

    Parameters
    ----------
    per_sample_results:
        One :class:`~repro.topk.package_search.PackageSearchResult` per weight
        sample (the output of running ``Top-k-Pkg`` per sample).
    k:
        Number of packages to return.
    semantics:
        EXP, TKP or MPO (string or enum).
    sample_weights:
        Optional importance weights ``q(w)``, one per sample; defaults to
        uniform.  Under EXP they multiply the utility contributions; under
        TKP/MPO they are added to the appearance counters instead of one, as
        §3.2.1 prescribes.
    """
    _check_k(k)
    semantics = RankingSemantics.parse(semantics)
    num_samples = len(per_sample_results)
    if num_samples == 0:
        raise ValueError("at least one per-sample result is required")
    if sample_weights is None:
        weights = np.ones(num_samples)
    else:
        weights = np.asarray(sample_weights, dtype=float).ravel()
        if weights.shape[0] != num_samples:
            raise ValueError(
                f"expected {num_samples} sample weights, got {weights.shape[0]}"
            )

    if semantics is RankingSemantics.EXP:
        utility_sum: Dict[Tuple[int, ...], float] = defaultdict(float)
        weight_sum: Dict[Tuple[int, ...], float] = defaultdict(float)
        for result, q in zip(per_sample_results, weights):
            for package, utility in result.as_pairs():
                utility_sum[package.items] += q * utility
                weight_sum[package.items] += q
        scores = {
            items: utility_sum[items] / weight_sum[items]
            for items in utility_sum
            if weight_sum[items] > 0
        }
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return [Package(items) for items, _ in ranked[:k]]

    if semantics is RankingSemantics.TKP:
        counters: Dict[Tuple[int, ...], float] = defaultdict(float)
        for result, q in zip(per_sample_results, weights):
            for package in result.packages:
                counters[package.items] += q
        ranked = sorted(counters.items(), key=lambda pair: (-pair[1], pair[0]))
        return [Package(items) for items, _ in ranked[:k]]

    # MPO: count identical top-k lists.
    list_counters: Dict[Tuple[Tuple[int, ...], ...], float] = defaultdict(float)
    for result, q in zip(per_sample_results, weights):
        key = tuple(package.items for package in result.packages[:k])
        list_counters[key] += q
    best_list = max(list_counters.items(), key=lambda pair: (pair[1], pair[0]))[0]
    return [Package(items) for items in best_list]
