"""Importance sampling with a grid-approximated polytope centre (§3.2.1).

Instead of sampling from the prior and rejecting, the importance sampler draws
from a Gaussian *proposal* ``Qw ~ N(w*, Σ)`` whose mean ``w*`` approximates the
centre of the convex region of valid weight vectors.  The centre is estimated
with a regular grid over ``[-1, 1]^m``: cells that cannot contain any valid
weight vector are discarded and ``w*`` is the mean of the surviving cell
centres (Figure 3 of the paper).  Each accepted sample carries the importance
weight ``q(w) = Pw(w) / Qw(w)`` that corrects for the change of distribution.

The grid is exponential in the number of features, which is exactly why the
paper excludes importance sampling from the high-dimensional experiments
(Figure 6 f–j); :class:`ImportanceSampler` enforces the same cut-off via
``max_features_for_grid`` and raises
:class:`ImportanceSamplingIntractableError` beyond it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.stats import multivariate_normal

from repro.index.grid import GridTooLargeError, WeightSpaceGrid
from repro.sampling.base import ConstraintSet, SamplePool, Sampler
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.rng import RngLike


class ImportanceSamplingIntractableError(RuntimeError):
    """Raised when the grid-based centre computation is infeasible (too many features)."""


class ImportanceSampler(Sampler):
    """Feedback-aware importance sampling over the valid weight region.

    Parameters
    ----------
    prior, rng, noise_probability:
        See :class:`~repro.sampling.base.Sampler`.
    cells_per_dim:
        Grid resolution per dimension used for the centre approximation.
    proposal_std:
        Standard deviation of the isotropic Gaussian proposal around the
        approximate centre.
    max_features_for_grid:
        Dimensionality above which the grid-based centre is refused, mirroring
        the paper's observation that the approach breaks down beyond ~5
        features.
    batch_size, max_attempts:
        Vectorised batch size and overall attempt cap, as for rejection
        sampling (invalid proposal draws are still rejected).
    """

    short_name = "IS"

    def __init__(
        self,
        prior: GaussianMixture,
        rng: RngLike = None,
        noise_probability: Optional[float] = None,
        cells_per_dim: int = 4,
        proposal_std: float = 0.35,
        max_features_for_grid: int = 5,
        batch_size: int = 1024,
        max_attempts: int = 2_000_000,
    ) -> None:
        super().__init__(prior, rng, noise_probability)
        if cells_per_dim <= 0:
            raise ValueError(f"cells_per_dim must be > 0, got {cells_per_dim}")
        if proposal_std <= 0:
            raise ValueError(f"proposal_std must be > 0, got {proposal_std}")
        if max_features_for_grid <= 0:
            raise ValueError(
                f"max_features_for_grid must be > 0, got {max_features_for_grid}"
            )
        if batch_size <= 0:
            raise ValueError(f"batch_size must be > 0, got {batch_size}")
        self.cells_per_dim = cells_per_dim
        self.proposal_std = proposal_std
        self.max_features_for_grid = max_features_for_grid
        self.batch_size = batch_size
        self.max_attempts = max_attempts

    # --------------------------------------------------------------- proposal
    def approximate_center(self, constraints: ConstraintSet) -> np.ndarray:
        """Grid-based approximation of the centre of the valid region.

        Raises
        ------
        ImportanceSamplingIntractableError
            If the number of features exceeds ``max_features_for_grid`` or the
            grid would exceed its internal cell cap.
        """
        if self.num_features > self.max_features_for_grid:
            raise ImportanceSamplingIntractableError(
                f"grid-based centre approximation is exponential in the number of "
                f"features; {self.num_features} features exceeds the configured "
                f"limit of {self.max_features_for_grid} (see paper Fig. 6f-j)"
            )
        try:
            grid = WeightSpaceGrid(self.num_features, self.cells_per_dim)
        except GridTooLargeError as exc:
            raise ImportanceSamplingIntractableError(str(exc)) from exc
        grid.prune_all(constraints.directions)
        return grid.approximate_center()

    def build_proposal(self, constraints: ConstraintSet):
        """The Gaussian proposal distribution ``Qw ~ N(w*, proposal_std² I)``."""
        center = self.approximate_center(constraints)
        covariance = np.eye(self.num_features) * self.proposal_std**2
        return multivariate_normal(mean=center, cov=covariance)

    # ---------------------------------------------------------------- sampling
    def sample(self, count: int, constraints: ConstraintSet) -> SamplePool:
        """Draw ``count`` valid samples with importance weights ``Pw(w)/Qw(w)``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if constraints.num_features != self.num_features:
            raise ValueError(
                f"constraints have {constraints.num_features} features, "
                f"sampler expects {self.num_features}"
            )
        proposal = self.build_proposal(constraints)
        accepted_samples = []
        accepted_weights = []
        attempts = 0
        total_accepted = 0
        while total_accepted < count:
            if attempts >= self.max_attempts:
                # Typed so callers can exclude IS from a workload it cannot
                # complete, exactly like the feature-count cut-off.
                raise ImportanceSamplingIntractableError(
                    f"importance sampling exhausted {attempts} proposal draws while "
                    f"collecting {total_accepted}/{count} valid samples"
                )
            batch = min(self.batch_size, self.max_attempts - attempts)
            draws = np.atleast_2d(
                proposal.rvs(size=batch, random_state=self.rng)
            )
            if draws.shape[0] != batch:  # scipy collapses size-1 draws
                draws = draws.reshape(batch, self.num_features)
            attempts += batch
            if self.noise_probability is None:
                mask = constraints.valid_mask(draws)
            else:
                violations = constraints.violation_counts(draws)
                mask = np.array(
                    [not self._rejects_under_noise(int(x)) for x in violations]
                )
            valid = draws[mask]
            if valid.shape[0] == 0:
                continue
            prior_density = np.atleast_1d(self.prior.pdf(valid))
            proposal_density = np.atleast_1d(proposal.pdf(valid))
            proposal_density = np.where(proposal_density <= 0, np.finfo(float).tiny, proposal_density)
            weights = prior_density / proposal_density
            accepted_samples.append(valid)
            accepted_weights.append(weights)
            total_accepted += valid.shape[0]
        samples = np.vstack(accepted_samples)[:count]
        weights = np.concatenate(accepted_weights)[:count]
        stats = {
            "sampler": self.short_name,
            "attempts": attempts,
            "accepted": int(total_accepted),
            "rejected": int(attempts - total_accepted),
            "acceptance_rate": (total_accepted / attempts) if attempts else 1.0,
            "proposal_mean": proposal.mean.tolist(),
        }
        return SamplePool(samples, weights, stats)
