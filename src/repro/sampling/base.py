"""Shared abstractions for constrained weight-vector sampling.

* :class:`ConstraintSet` — the half-space constraints induced by feedback
  (``w`` valid iff ``w · d >= 0`` for every direction ``d``), with optional
  noise-aware soft rejection (§7).
* :class:`SamplePool` — a weighted pool of accepted weight vectors, the output
  of every sampler and the input to the ranking-semantics aggregation (§4).
* :class:`Sampler` — the abstract base class all three samplers implement.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.core.preferences import Preference, PreferenceStore
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_matrix, require_vector


class ConstraintSet:
    """Half-space constraints on weight vectors derived from feedback.

    A weight vector ``w`` is *valid* when ``w · d >= 0`` for every stored
    direction ``d`` (where ``d = p_preferred - p_other``).

    Parameters
    ----------
    directions:
        ``(c, m)`` matrix of half-space normals (may be empty).
    num_features:
        Required when ``directions`` is empty, to fix the dimensionality.
    """

    def __init__(
        self,
        directions: Optional[np.ndarray] = None,
        num_features: Optional[int] = None,
    ) -> None:
        if directions is None or np.size(directions) == 0:
            if num_features is None:
                raise ValueError(
                    "num_features is required when no directions are given"
                )
            self._directions = np.zeros((0, int(num_features)))
        else:
            self._directions = require_matrix(directions, "directions")
        self.num_features = self._directions.shape[1]

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_preferences(
        cls, preferences: Iterable[Preference], num_features: Optional[int] = None
    ) -> "ConstraintSet":
        """Build a constraint set from preference objects."""
        directions = [p.direction for p in preferences]
        if not directions:
            return cls(None, num_features=num_features)
        return cls(np.stack(directions))

    @classmethod
    def from_store(cls, store: PreferenceStore, reduced: bool = True) -> "ConstraintSet":
        """Build a constraint set from a :class:`PreferenceStore`.

        ``reduced=True`` applies the transitive-reduction optimisation of §3.3
        so redundant constraints are not checked during sampling.
        """
        return cls(store.directions(reduced=reduced), num_features=store.num_features)

    @classmethod
    def empty(cls, num_features: int) -> "ConstraintSet":
        """A constraint set with no constraints (every weight vector is valid)."""
        return cls(None, num_features=num_features)

    # ------------------------------------------------------------------ basics
    @property
    def directions(self) -> np.ndarray:
        """The ``(c, m)`` matrix of half-space normals."""
        return self._directions

    def __len__(self) -> int:
        return self._directions.shape[0]

    def is_empty(self) -> bool:
        """Whether there are no constraints."""
        return len(self) == 0

    # ---------------------------------------------------------------- checking
    def is_valid(self, weights: np.ndarray) -> bool:
        """Whether a single weight vector satisfies every constraint."""
        if self.is_empty():
            return True
        weights = require_vector(weights, "weights", length=self.num_features)
        return bool(np.all(self._directions @ weights >= 0.0))

    def violations(self, weights: np.ndarray) -> int:
        """Number of constraints violated by a single weight vector."""
        if self.is_empty():
            return 0
        weights = require_vector(weights, "weights", length=self.num_features)
        return int(np.sum(self._directions @ weights < 0.0))

    def valid_mask(self, samples: np.ndarray) -> np.ndarray:
        """Boolean mask over rows of ``samples`` marking fully-valid vectors."""
        samples = require_matrix(samples, "samples", columns=self.num_features)
        if self.is_empty():
            return np.ones(samples.shape[0], dtype=bool)
        return np.all(samples @ self._directions.T >= 0.0, axis=1)

    def violation_counts(self, samples: np.ndarray) -> np.ndarray:
        """Per-row count of violated constraints for a stack of samples."""
        samples = require_matrix(samples, "samples", columns=self.num_features)
        if self.is_empty():
            return np.zeros(samples.shape[0], dtype=int)
        return np.sum(samples @ self._directions.T < 0.0, axis=1).astype(int)

    # ----------------------------------------------------------- interior point
    def interior_point(self, bound: float = 1.0) -> Optional[np.ndarray]:
        """A strictly interior valid weight vector, or ``None`` if none exists.

        Solves the Chebyshev-centre linear program over the constraint cone
        intersected with the box ``[-bound, bound]^m``: maximise ``t`` subject
        to ``d_i · w >= t * ||d_i||``.  A positive optimum yields a point with
        slack against every constraint — the robust way to seed an MCMC chain
        when the valid region's prior mass is too small for rejection
        sampling to hit (high dimensionality, many accumulated preferences).
        """
        if bound <= 0:
            raise ValueError(f"bound must be > 0, got {bound}")
        if self.is_empty():
            return np.zeros(self.num_features)
        from scipy.optimize import linprog

        directions = self._directions
        norms = np.linalg.norm(directions, axis=1)
        directions = directions[norms > 0]
        norms = norms[norms > 0]
        if directions.shape[0] == 0:
            return np.zeros(self.num_features)
        m = self.num_features
        # Variables x = (w, t); maximise t  <=>  minimise -t.
        objective = np.zeros(m + 1)
        objective[-1] = -1.0
        # -d_i · w + ||d_i|| t <= 0.
        a_ub = np.hstack([-directions, norms[:, None]])
        b_ub = np.zeros(directions.shape[0])
        bounds = [(-bound, bound)] * m + [(0.0, bound)]
        result = linprog(objective, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not result.success or result.x is None:
            return None
        point, slack = result.x[:m], result.x[m]
        if slack <= 0 or not self.is_valid(point):
            return None
        return point

    # ------------------------------------------------------------- fingerprint
    def fingerprint(self, precision: int = 10) -> str:
        """A canonical content fingerprint of the constraint set.

        Two constraint sets that contain the same half-space directions — in
        any order, up to ``precision`` decimal digits — produce the same
        fingerprint.  The serving layer uses this as the key of the shared
        sample-pool cache: sessions whose feedback prefixes induce identical
        constraint sets map to the same key and can share one pool of
        posterior samples.
        """
        rounded = np.round(self._directions, precision)
        rounded += 0.0  # normalise -0.0 to +0.0 so signs cannot split keys
        rows = sorted(tuple(row) for row in rounded.tolist())
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"m={self.num_features};c={len(rows)};".encode())
        for row in rows:
            digest.update(repr(row).encode())
        return digest.hexdigest()

    # --------------------------------------------------------------- extension
    def extended(self, new_directions: np.ndarray) -> "ConstraintSet":
        """A new constraint set with additional directions appended."""
        new_directions = np.atleast_2d(np.asarray(new_directions, dtype=float))
        if new_directions.shape[1] != self.num_features:
            raise ValueError(
                f"new directions have {new_directions.shape[1]} features, "
                f"expected {self.num_features}"
            )
        return ConstraintSet(np.vstack([self._directions, new_directions]))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ConstraintSet(num_constraints={len(self)}, "
            f"num_features={self.num_features})"
        )


@dataclass
class SamplePool:
    """A weighted pool of accepted weight-vector samples.

    Attributes
    ----------
    samples:
        ``(N, m)`` matrix of weight vectors, all valid w.r.t. the constraints
        in force when they were generated.
    weights:
        ``(N,)`` importance weights (all ones for rejection and MCMC sampling).
    stats:
        Free-form sampler statistics (attempts, acceptance rate, timings, ...).
    """

    samples: np.ndarray
    weights: np.ndarray
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.samples = np.atleast_2d(np.asarray(self.samples, dtype=float))
        if self.samples.size == 0:
            self.samples = self.samples.reshape(0, self.samples.shape[-1] if self.samples.ndim > 1 else 0)
        self.weights = np.asarray(self.weights, dtype=float).ravel()
        if self.weights.shape[0] != self.samples.shape[0]:
            raise ValueError(
                f"weights length {self.weights.shape[0]} does not match "
                f"{self.samples.shape[0]} samples"
            )
        if (self.weights < 0).any():
            raise ValueError("importance weights must be non-negative")

    # ------------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        """Number of samples in the pool."""
        return self.samples.shape[0]

    @property
    def num_features(self) -> int:
        """Dimensionality of the samples."""
        return self.samples.shape[1] if self.samples.ndim == 2 else 0

    def __len__(self) -> int:
        return self.size

    @classmethod
    def empty(cls, num_features: int) -> "SamplePool":
        """An empty pool of the given dimensionality."""
        return cls(np.zeros((0, num_features)), np.zeros(0))

    @classmethod
    def unweighted(cls, samples: np.ndarray, stats: Optional[dict] = None) -> "SamplePool":
        """A pool where every sample carries weight 1."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        return cls(samples, np.ones(samples.shape[0]), stats or {})

    # -------------------------------------------------------------- operations
    def normalised_weights(self) -> np.ndarray:
        """Importance weights normalised to sum to 1 (uniform if all zero)."""
        total = self.weights.sum()
        if total <= 0:
            if self.size == 0:
                return self.weights
            return np.full(self.size, 1.0 / self.size)
        return self.weights / total

    def copy(self) -> "SamplePool":
        """An independent deep copy of the pool (samples, weights and stats)."""
        return SamplePool(self.samples.copy(), self.weights.copy(), dict(self.stats))

    def subset(self, mask_or_indices) -> "SamplePool":
        """A new pool restricted to the given boolean mask or index array."""
        return SamplePool(
            self.samples[mask_or_indices],
            self.weights[mask_or_indices],
            dict(self.stats),
        )

    def concatenate(self, other: "SamplePool") -> "SamplePool":
        """A new pool containing the samples of both pools."""
        if other.size == 0:
            return SamplePool(self.samples.copy(), self.weights.copy(), dict(self.stats))
        if self.size == 0:
            return SamplePool(other.samples.copy(), other.weights.copy(), dict(other.stats))
        return SamplePool(
            np.vstack([self.samples, other.samples]),
            np.concatenate([self.weights, other.weights]),
            dict(self.stats),
        )

    def mean_weight_vector(self) -> np.ndarray:
        """Importance-weighted mean of the pooled weight vectors."""
        if self.size == 0:
            raise ValueError("cannot take the mean of an empty sample pool")
        return np.average(self.samples, axis=0, weights=self.normalised_weights())

    def effective_sample_size(self) -> float:
        """Kish effective sample size ``(Σq)² / Σq²`` of the pool."""
        if self.size == 0:
            return 0.0
        total = self.weights.sum()
        if total <= 0:
            return float(self.size)
        return float(total**2 / np.square(self.weights).sum())


class Sampler(abc.ABC):
    """Abstract base class for constrained weight-vector samplers.

    Parameters
    ----------
    prior:
        The Gaussian-mixture prior ``Pw`` over weight vectors.
    rng:
        Seed or generator used for all randomness in the sampler.
    noise_probability:
        Optional feedback-noise parameter ψ from §7: the probability that any
        single feedback preference is correct.  ``None`` (default) assumes
        noise-free feedback, i.e. hard constraints.
    """

    #: Human-readable name used in experiment reports ("RS", "IS", "MS").
    short_name: str = "base"

    def __init__(
        self,
        prior: GaussianMixture,
        rng: RngLike = None,
        noise_probability: Optional[float] = None,
    ) -> None:
        self.prior = prior
        self.rng = ensure_rng(rng)
        if noise_probability is not None and not 0.0 <= noise_probability <= 1.0:
            raise ValueError(
                f"noise_probability must be in [0, 1], got {noise_probability}"
            )
        self.noise_probability = noise_probability

    @property
    def num_features(self) -> int:
        """Dimensionality of the weight space."""
        return self.prior.dimension

    @abc.abstractmethod
    def sample(self, count: int, constraints: ConstraintSet) -> SamplePool:
        """Draw ``count`` valid weight vectors under ``constraints``."""

    # ------------------------------------------------------------ noise model
    def _rejects_under_noise(self, num_violations: int) -> bool:
        """Whether a sample violating ``num_violations`` constraints is rejected.

        With the §7 noise model each feedback is independently correct with
        probability ψ; a sample is rejected with the probability that at least
        one of the constraints it violates is correct, ``1 - (1 - ψ)^x``.
        Without a noise model any violation causes rejection.
        """
        if num_violations <= 0:
            return False
        if self.noise_probability is None:
            return True
        reject_probability = 1.0 - (1.0 - self.noise_probability) ** num_violations
        return bool(self.rng.random() < reject_probability)

    def _accepts(self, weights: np.ndarray, constraints: ConstraintSet) -> bool:
        """Constraint/noise-aware acceptance test for a candidate sample."""
        if self.noise_probability is None:
            return constraints.is_valid(weights)
        return not self._rejects_under_noise(constraints.violations(weights))
