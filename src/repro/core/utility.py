"""Linear package utility functions (Equation 1 of the paper).

A user's preference over packages is modelled as ``U(p) = w · p`` where ``p``
is the package's normalised aggregate feature vector and ``w ∈ [-1, 1]^m``.
A positive weight means larger feature values are preferred (e.g. rating); a
negative weight means smaller values are preferred (e.g. cost).

:class:`LinearUtility` also answers whether the utility function is
*set-monotone* for a given profile (§4.1): the upper-bound routine of the
``Top-k-Pkg`` search behaves differently for set-monotone functions.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.packages import Package, PackageEvaluator
from repro.core.profiles import AggregateProfile, Aggregation
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import require_vector


class LinearUtility:
    """An additive (linear) utility function over package feature vectors.

    Parameters
    ----------
    weights:
        The weight vector ``w``; each component should lie in ``[-1, 1]``
        (enforced unless ``clip=False`` and the value is only slightly out of
        range due to floating point noise).
    clip:
        When ``True`` (default), weights are clipped into ``[-1, 1]``; when
        ``False``, out-of-range weights raise ``ValueError``.
    """

    def __init__(self, weights: np.ndarray, clip: bool = True) -> None:
        weights = require_vector(weights, "weights")
        if clip:
            weights = np.clip(weights, -1.0, 1.0)
        elif (np.abs(weights) > 1.0 + 1e-9).any():
            raise ValueError(
                "weights must lie in [-1, 1]; pass clip=True to clip them"
            )
        self.weights = weights

    # ------------------------------------------------------------------ basics
    @property
    def num_features(self) -> int:
        """Dimensionality of the weight vector."""
        return self.weights.shape[0]

    def value(self, package_vector: np.ndarray) -> float:
        """Utility of a (normalised) package feature vector."""
        vector = require_vector(package_vector, "package_vector", length=self.num_features)
        return float(vector @ self.weights)

    def values(self, package_vectors: np.ndarray) -> np.ndarray:
        """Utilities of a stack of package feature vectors."""
        matrix = np.asarray(package_vectors, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        return matrix @ self.weights

    def package_utility(self, evaluator: PackageEvaluator, package: Package) -> float:
        """Utility of ``package`` evaluated through ``evaluator``."""
        return evaluator.utility(package, self.weights)

    def prefers(
        self,
        evaluator: PackageEvaluator,
        first: Package,
        second: Package,
    ) -> bool:
        """Whether ``first`` is (strictly or tie-broken) preferred to ``second``.

        Ties in utility are resolved deterministically by package id, as the
        paper assumes (§2.1, following Soliman et al.).
        """
        u_first = evaluator.utility(first, self.weights)
        u_second = evaluator.utility(second, self.weights)
        if u_first != u_second:
            return u_first > u_second
        return first.package_id < second.package_id

    # ------------------------------------------------------------ monotonicity
    def is_set_monotone(self, profile: AggregateProfile) -> bool:
        """Whether ``U(p ∪ p') >= U(p)`` for all packages (given non-negative values).

        Per feature, adding items can only help (or not hurt) when:

        * aggregation is ``sum`` or ``max`` and the weight is >= 0,
        * aggregation is ``min`` and the weight is <= 0 (adding items can only
          lower the minimum, which increases a negatively-weighted term),
        * the weight is exactly 0 or the aggregation is ``null``.

        ``avg`` is never set-monotone for a non-zero weight because adding an
        item can move the average either way.
        """
        if profile.num_features != self.num_features:
            raise ValueError(
                f"profile has {profile.num_features} features but the utility "
                f"has {self.num_features}"
            )
        for weight, aggregation in zip(self.weights, profile.aggregations):
            if aggregation is Aggregation.NULL or weight == 0.0:
                continue
            if aggregation in (Aggregation.SUM, Aggregation.MAX):
                if weight < 0:
                    return False
            elif aggregation is Aggregation.MIN:
                if weight > 0:
                    return False
            elif aggregation is Aggregation.AVG:
                return False
        return True

    # ----------------------------------------------------------------- algebra
    def __eq__(self, other) -> bool:
        if not isinstance(other, LinearUtility):
            return NotImplemented
        return np.array_equal(self.weights, other.weights)

    def __hash__(self) -> int:
        return hash(self.weights.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LinearUtility({np.round(self.weights, 4).tolist()})"


def sample_random_utility(
    num_features: int,
    rng: RngLike = None,
    signs: Optional[Sequence[int]] = None,
) -> LinearUtility:
    """Draw a random utility function with weights uniform in ``[-1, 1]``.

    Parameters
    ----------
    num_features:
        Dimensionality of the weight vector.
    rng:
        Seed or generator.
    signs:
        Optional per-feature sign constraints: ``+1`` forces a non-negative
        weight, ``-1`` forces a non-positive weight, ``0`` leaves the weight
        unconstrained.  Useful for scenarios like "cost is always bad, rating
        always good".
    """
    if num_features <= 0:
        raise ValueError(f"num_features must be > 0, got {num_features}")
    generator = ensure_rng(rng)
    weights = generator.uniform(-1.0, 1.0, size=num_features)
    if signs is not None:
        if len(signs) != num_features:
            raise ValueError(
                f"expected {num_features} sign constraints, got {len(signs)}"
            )
        for i, sign in enumerate(signs):
            if sign > 0:
                weights[i] = abs(weights[i])
            elif sign < 0:
                weights[i] = -abs(weights[i])
    return LinearUtility(weights)
