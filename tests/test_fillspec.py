"""Tests for the serializable pool-fill seam (FillSpec / FillContext).

The contract under test: a :class:`FillSpec` is pure picklable data, the
module-level :func:`build_sampler` resolves it identically in any process,
and the result matches what the engine's in-process sampler construction
produces — the property every process-parallel fill rests on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.sampling.base import ConstraintSet
from repro.sampling.fillspec import (
    FillContext,
    FillSpec,
    PriorSpec,
    _SAMPLER_BUILDERS,
    build_sampler,
    derive_fill_seed,
    execute_fill,
    get_fill_context,
    register_fill_context,
    register_sampler_builder,
)
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.service import EngineConfig, RecommendationEngine
from repro.core.elicitation import ElicitationConfig

NUM_FEATURES = 3
CONSTRAINTS = ConstraintSet(np.array([[1.0, -0.5, 0.25], [0.0, 1.0, -1.0]]))


@pytest.fixture
def prior():
    return GaussianMixture.default_prior(NUM_FEATURES, rng=0)


@pytest.fixture
def context_digest(prior):
    return register_fill_context(FillContext(prior=PriorSpec.from_mixture(prior)))


def make_spec(context_digest, key="n20:abc", sampler="batch", **overrides):
    defaults = dict(sampler=sampler, seed_root=7, context_digest=context_digest)
    defaults.update(overrides)
    return FillSpec.for_fill(key, CONSTRAINTS, 20, **defaults)


# ==================================================================== contexts
class TestPriorSpec:
    def test_round_trip_is_binary_exact(self, prior):
        rebuilt = PriorSpec.from_mixture(prior).build()
        np.testing.assert_array_equal(rebuilt.means, prior.means)
        np.testing.assert_array_equal(rebuilt.covariances, prior.covariances)
        np.testing.assert_array_equal(rebuilt.weights, prior.weights)

    def test_context_digest_is_content_addressed(self, prior):
        a = FillContext(prior=PriorSpec.from_mixture(prior))
        b = FillContext(prior=PriorSpec.from_mixture(prior))
        assert a.digest == b.digest
        other = GaussianMixture.default_prior(NUM_FEATURES, 3, 1.5, rng=1)
        c = FillContext(prior=PriorSpec.from_mixture(other))
        assert c.digest != a.digest

    def test_registration_is_idempotent(self, prior):
        context = FillContext(prior=PriorSpec.from_mixture(prior))
        digest = register_fill_context(context)
        assert register_fill_context(context) == digest
        assert get_fill_context(digest) is not None

    def test_unknown_digest_raises_helpfully(self):
        with pytest.raises(KeyError, match="initializer"):
            get_fill_context("no-such-digest")


# ======================================================================= specs
class TestFillSpec:
    def test_spec_is_picklable_plain_data(self, context_digest):
        spec = make_spec(context_digest)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_constraint_set_round_trip(self, context_digest):
        spec = make_spec(context_digest)
        rebuilt = spec.constraint_set()
        np.testing.assert_array_equal(rebuilt.directions, CONSTRAINTS.directions)
        assert rebuilt.fingerprint() == CONSTRAINTS.fingerprint()

    def test_empty_constraints(self, context_digest):
        spec = FillSpec.for_fill(
            "n5:empty",
            ConstraintSet.empty(NUM_FEATURES),
            5,
            sampler="batch",
            seed_root=0,
            context_digest=context_digest,
        )
        assert spec.constraint_rows == ()
        assert len(spec.constraint_set()) == 0
        assert spec.constraint_set().num_features == NUM_FEATURES

    def test_seed_is_derived_from_root_and_key(self, context_digest):
        a = make_spec(context_digest, key="n20:a")
        b = make_spec(context_digest, key="n20:b")
        assert a.seed != b.seed
        assert a.seed == derive_fill_seed(7, "n20:a")

    def test_validation(self, context_digest):
        with pytest.raises(ValueError, match="sampler"):
            make_spec(context_digest, sampler="nope")
        with pytest.raises(ValueError, match="count"):
            FillSpec(
                key="k",
                count=-1,
                num_features=NUM_FEATURES,
                constraint_rows=(),
                sampler="batch",
                seed=0,
                context_digest=context_digest,
            )
        with pytest.raises(ValueError, match="entries"):
            FillSpec(
                key="k",
                count=1,
                num_features=NUM_FEATURES,
                constraint_rows=((1.0, 2.0),),
                sampler="batch",
                seed=0,
                context_digest=context_digest,
            )


# ================================================================== resolution
class TestBuildSampler:
    @pytest.mark.parametrize(
        "kind", ["batch", "rejection", "importance", "mcmc"]
    )
    def test_execute_fill_is_deterministic(self, context_digest, kind):
        spec = make_spec(context_digest, sampler=kind)
        a = execute_fill(spec)
        b = execute_fill(spec)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.size == 20

    def test_explicit_context_registers_itself(self, prior):
        context = FillContext(prior=PriorSpec.from_mixture(prior))
        spec = make_spec(context.digest)
        pool = execute_fill(spec, context)  # works even before registration
        assert pool.size == 20

    def test_custom_sampler_kind(self, context_digest):
        calls = []

        def builder(spec, prior_mixture, rng):
            class ConstantSampler:
                def sample(self, count, constraints):
                    calls.append(spec.key)
                    from repro.sampling.base import SamplePool

                    return SamplePool.unweighted(
                        np.full((count, spec.num_features), 0.5)
                    )

            return ConstantSampler()

        register_sampler_builder("constant", builder)
        try:
            spec = make_spec(context_digest, sampler="constant")
            pool = execute_fill(spec)
            assert pool.size == 20
            assert calls == [spec.key]
        finally:
            _SAMPLER_BUILDERS.pop("constant", None)

    def test_invalid_builder_kind_rejected(self):
        with pytest.raises(ValueError):
            register_sampler_builder("", lambda *a: None)


# ============================================================== engine parity
class TestEngineParity:
    """The engine's spec factory resolves to its legacy sampler construction."""

    @pytest.fixture
    def engine(self):
        rng = np.random.default_rng(11)
        catalog = ItemCatalog(rng.random((30, NUM_FEATURES)))
        profile = AggregateProfile(["sum", "avg", "max"])
        config = EngineConfig(
            elicitation=ElicitationConfig(
                k=2,
                num_random=2,
                max_package_size=2,
                num_samples=30,
                search_sample_budget=3,
                search_beam_width=60,
                search_items_cap=25,
                seed=0,
            ),
            seed=1,
        )
        return RecommendationEngine(catalog, profile, config)

    def test_spec_fill_matches_legacy_sampler_fill(self, engine):
        key = engine._pool_key(CONSTRAINTS, 30)
        spec = engine._fill_spec(key, CONSTRAINTS, 30)
        from_spec = execute_fill(spec)
        legacy = engine._fill_sampler(key).sample(30, CONSTRAINTS)
        np.testing.assert_array_equal(from_spec.samples, legacy.samples)
        np.testing.assert_array_equal(from_spec.weights, legacy.weights)

    def test_spec_survives_pickling_and_still_matches(self, engine):
        key = engine._pool_key(CONSTRAINTS, 30)
        spec = pickle.loads(pickle.dumps(engine._fill_spec(key, CONSTRAINTS, 30)))
        from_spec = execute_fill(spec)
        legacy = engine._fill_sampler(key).sample(30, CONSTRAINTS)
        np.testing.assert_array_equal(from_spec.samples, legacy.samples)

    def test_engine_registers_its_context(self, engine):
        context = get_fill_context(engine._fill_context_digest)
        rebuilt = context.prior.build()
        np.testing.assert_array_equal(rebuilt.means, engine.prior.means)
