"""Tests for aggregate feature profiles (Definition 1)."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile, Aggregation


class TestAggregationParse:
    @pytest.mark.parametrize("name,member", [
        ("sum", Aggregation.SUM),
        ("AVG", Aggregation.AVG),
        ("Min", Aggregation.MIN),
        ("max", Aggregation.MAX),
        ("null", Aggregation.NULL),
    ])
    def test_parse_strings(self, name, member):
        assert Aggregation.parse(name) is member

    def test_parse_member_passthrough(self):
        assert Aggregation.parse(Aggregation.SUM) is Aggregation.SUM

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            Aggregation.parse("median")

    def test_parse_wrong_type_raises(self):
        with pytest.raises(TypeError):
            Aggregation.parse(42)


class TestProfileConstruction:
    def test_basic(self):
        profile = AggregateProfile(["sum", "avg"])
        assert profile.num_features == 2
        assert profile[0] is Aggregation.SUM
        assert list(profile) == [Aggregation.SUM, Aggregation.AVG]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggregateProfile([])

    def test_all_null_rejected(self):
        with pytest.raises(ValueError):
            AggregateProfile(["null", "null"])

    def test_uniform_constructor(self):
        profile = AggregateProfile.uniform(3, "max")
        assert all(a is Aggregation.MAX for a in profile)

    def test_from_mapping(self):
        profile = AggregateProfile.from_mapping(3, {0: "sum", 2: "avg"})
        assert profile.aggregations == (Aggregation.SUM, Aggregation.NULL, Aggregation.AVG)

    def test_from_mapping_out_of_range(self):
        with pytest.raises(ValueError):
            AggregateProfile.from_mapping(2, {5: "sum"})

    def test_equality_and_hash(self):
        assert AggregateProfile(["sum", "avg"]) == AggregateProfile(["sum", "avg"])
        assert hash(AggregateProfile(["sum"])) == hash(AggregateProfile(["sum"]))
        assert AggregateProfile(["sum", "avg"]) != AggregateProfile(["avg", "sum"])

    def test_active_features_excludes_null(self):
        profile = AggregateProfile(["sum", "null", "avg"])
        assert profile.active_features() == [0, 2]

    def test_mismatched_feature_names_rejected(self):
        with pytest.raises(ValueError):
            AggregateProfile(["sum"], feature_names=["a", "b"])

    def test_describe_mentions_active_features(self):
        profile = AggregateProfile(["sum", "null"], feature_names=["cost", "skip"])
        described = profile.describe()
        assert "sum(cost)" in described
        assert "skip" not in described


class TestAggregate:
    def test_paper_definition_semantics(self):
        """sum/avg/min/max per Definition 1, avg divides by |p|."""
        profile = AggregateProfile(["sum", "avg", "min", "max"])
        values = np.array([[1.0, 2.0, 3.0, 4.0], [3.0, 4.0, 1.0, 2.0]])
        aggregated = profile.aggregate(values)
        assert np.allclose(aggregated, [4.0, 3.0, 1.0, 4.0])

    def test_null_feature_is_zero(self):
        profile = AggregateProfile(["sum", "null"])
        aggregated = profile.aggregate(np.array([[1.0, 5.0], [2.0, 5.0]]))
        assert aggregated[1] == 0.0

    def test_nan_values_are_excluded_but_count_in_avg(self):
        profile = AggregateProfile(["avg", "sum"])
        values = np.array([[2.0, 1.0], [np.nan, 1.0]])
        aggregated = profile.aggregate(values)
        # avg divides by the package size (2), not by the non-null count.
        assert aggregated[0] == pytest.approx(1.0)
        assert aggregated[1] == pytest.approx(2.0)

    def test_all_null_feature_aggregates_to_zero(self):
        profile = AggregateProfile(["min", "sum"])
        values = np.array([[np.nan, 1.0]])
        assert profile.aggregate(values)[0] == 0.0

    def test_wrong_shape_raises(self):
        profile = AggregateProfile(["sum", "avg"])
        with pytest.raises(ValueError):
            profile.aggregate(np.ones((2, 3)))


class TestMaxAggregateValues:
    def test_paper_example_normalisers(self, paper_example_catalog):
        """Example 1: max sum over size-2 packages is 1.0, max avg is 0.4."""
        profile = AggregateProfile(["sum", "avg"])
        normalisers = profile.max_aggregate_values(paper_example_catalog, 2)
        assert np.allclose(normalisers, [1.0, 0.4])

    def test_sum_uses_top_phi_items(self):
        catalog = ItemCatalog(np.array([[1.0], [2.0], [3.0]]))
        profile = AggregateProfile(["sum"])
        assert profile.max_aggregate_values(catalog, 2)[0] == pytest.approx(5.0)
        assert profile.max_aggregate_values(catalog, 3)[0] == pytest.approx(6.0)

    def test_min_max_avg_use_single_best_item(self):
        catalog = ItemCatalog(np.array([[1.0, 1.0, 1.0], [4.0, 4.0, 4.0]]))
        profile = AggregateProfile(["min", "max", "avg"])
        assert np.allclose(profile.max_aggregate_values(catalog, 2), [4.0, 4.0, 4.0])

    def test_null_feature_normaliser_is_one(self):
        catalog = ItemCatalog(np.array([[2.0, 3.0]]))
        profile = AggregateProfile(["null", "sum"])
        assert profile.max_aggregate_values(catalog, 1)[0] == 1.0

    def test_zero_valued_feature_normaliser_is_one(self):
        catalog = ItemCatalog(np.zeros((3, 1)))
        profile = AggregateProfile(["sum"])
        assert profile.max_aggregate_values(catalog, 2)[0] == 1.0

    def test_invalid_package_size_raises(self, paper_example_catalog):
        profile = AggregateProfile(["sum", "avg"])
        with pytest.raises(ValueError):
            profile.max_aggregate_values(paper_example_catalog, 0)
