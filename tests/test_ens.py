"""Tests for the Effective Number of Samples (ENS) machinery (Equation 3)."""

import numpy as np
import pytest

from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.ens import (
    chi_square_distance,
    effective_number_of_samples,
    ens_from_weights,
    pool_ens,
    truncated_posterior_density,
)
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import ImportanceSampler


class TestEnsFromWeights:
    def test_uniform_weights_equal_count(self):
        assert ens_from_weights(np.ones(50)) == pytest.approx(50.0)

    def test_skewed_weights_reduce_ens(self):
        skewed = ens_from_weights(np.array([10.0, 0.1, 0.1, 0.1]))
        assert skewed < 4.0
        assert skewed >= 1.0

    def test_empty_and_zero_weights(self):
        assert ens_from_weights(np.zeros(0)) == 0.0
        assert ens_from_weights(np.zeros(5)) == 0.0

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            ens_from_weights(np.array([1.0, -0.5]))

    def test_pool_ens_wrapper(self):
        pool = SamplePool.unweighted(np.zeros((7, 2)))
        assert pool_ens(pool) == pytest.approx(7.0)


class TestChiSquare:
    def test_identical_distributions_have_zero_distance(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        points = prior.sample(500, rng=1)
        distance = chi_square_distance(prior.pdf, prior.pdf, points)
        assert distance == pytest.approx(0.0, abs=1e-12)

    def test_different_distributions_have_positive_distance(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        shifted = GaussianMixture.isotropic(np.array([0.6, 0.6]), 0.25)
        points = shifted.sample(500, rng=1)
        assert chi_square_distance(prior.pdf, shifted.pdf, points) > 0.01

    def test_empty_points_rejected(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        with pytest.raises(ValueError):
            chi_square_distance(prior.pdf, prior.pdf, np.zeros((0, 2)))


class TestEffectiveNumberOfSamples:
    def test_equation_three_maximum(self):
        """ENS reaches its maximum N when proposal equals the target."""
        prior = GaussianMixture.default_prior(2, rng=0)
        points = prior.sample(300, rng=1)
        ens = effective_number_of_samples(300, prior.pdf, prior.pdf, points)
        assert ens == pytest.approx(300.0)

    def test_negative_sample_count_rejected(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        with pytest.raises(ValueError):
            effective_number_of_samples(-1, prior.pdf, prior.pdf, prior.sample(10, rng=0))

    def test_theorem1_ordering_importance_at_least_rejection(self):
        """Theorem 1: the feedback-aware proposal is no farther from the posterior.

        We estimate the χ²-based ENS of the rejection 'proposal' (the prior
        itself) and of the importance proposal against the truncated posterior;
        the importance sampler should not be worse.
        """
        prior = GaussianMixture.default_prior(2, rng=0)
        # Constraints that carve out a clearly off-centre region.
        constraints = ConstraintSet(np.array([[1.0, 0.2], [0.3, 1.0]]))
        posterior = truncated_posterior_density(prior, constraints, rng=0)

        importance = ImportanceSampler(prior, rng=1)
        proposal = importance.build_proposal(constraints)

        evaluation_points = prior.sample(4000, rng=2)
        n = 1000
        ens_rejection = effective_number_of_samples(
            n, posterior, prior.pdf, evaluation_points
        )
        proposal_points = np.atleast_2d(proposal.rvs(size=4000, random_state=3))
        ens_importance = effective_number_of_samples(
            n, posterior, proposal.pdf, proposal_points
        )
        assert ens_importance >= ens_rejection * 0.95  # allow Monte-Carlo slack


class TestTruncatedPosterior:
    def test_density_zero_outside_valid_region(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        density = truncated_posterior_density(prior, constraints, rng=0)
        values = density(np.array([[0.5, 0.0], [-0.5, 0.0]]))
        assert values[0] > 0.0
        assert values[1] == 0.0

    def test_density_renormalised_upward(self):
        prior = GaussianMixture.default_prior(2, rng=0)
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        density = truncated_posterior_density(prior, constraints, rng=0)
        point = np.array([[0.4, 0.1]])
        assert density(point)[0] > prior.pdf(point)[0]
