"""Tests for the synthetic NBA career-statistics dataset substitute."""

import numpy as np
import pytest

from repro.data.nba import NBA_FEATURES, NBA_NUM_PLAYERS, generate_nba_dataset


class TestGenerateNbaDataset:
    def test_default_shape_matches_paper(self):
        data = generate_nba_dataset(rng=0)
        assert data.shape == (NBA_NUM_PLAYERS, 10)

    def test_values_normalised(self):
        data = generate_nba_dataset(500, 10, rng=0)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_feature_names_returned_when_requested(self):
        data, names = generate_nba_dataset(100, 6, rng=0, return_feature_names=True)
        assert data.shape == (100, 6)
        assert len(names) == 6
        assert all(name in NBA_FEATURES for name in names)

    def test_reproducible_with_seed(self):
        assert np.array_equal(
            generate_nba_dataset(200, 8, rng=3), generate_nba_dataset(200, 8, rng=3)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            generate_nba_dataset(200, 8, rng=3), generate_nba_dataset(200, 8, rng=4)
        )

    def test_counting_stats_are_positively_correlated(self):
        # Career totals driven by a shared latent factor should correlate.
        rng = np.random.default_rng(0)
        data, names = generate_nba_dataset(3000, 17, rng=rng, return_feature_names=True)
        counting = [i for i, n in enumerate(names) if not n.endswith("_pct")]
        correlations = np.corrcoef(data[:, counting], rowvar=False)
        off_diagonal = correlations[~np.eye(len(counting), dtype=bool)]
        assert off_diagonal.mean() > 0.5

    def test_counting_stats_are_right_skewed(self):
        data, names = generate_nba_dataset(3000, 17, rng=1, return_feature_names=True)
        points_column = data[:, names.index("points")]
        # Most players have short careers: the median is well below the mean scale.
        assert np.median(points_column) < np.mean(points_column)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            generate_nba_dataset(0, 5)
        with pytest.raises(ValueError):
            generate_nba_dataset(10, 0)
        with pytest.raises(ValueError):
            generate_nba_dataset(10, len(NBA_FEATURES) + 1)

    def test_all_17_features_available(self):
        data, names = generate_nba_dataset(100, 17, rng=0, return_feature_names=True)
        assert sorted(names) == sorted(NBA_FEATURES)
