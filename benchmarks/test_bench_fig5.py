"""Benchmark for Figure 5: constraint-checking cost before vs after pruning.

Regenerates the three sweeps of Figure 5 (number of features, number of
samples, number of Gaussians) and asserts the paper's headline: the pruned
checker is consistently faster (the paper reports at least ~10% improvement;
the early-termination checker here typically does much better because invalid
samples are rejected after touching only a few constraints).
"""

import pytest

from repro.experiments.fig5_constraint_checking import (
    run_constraint_checking_experiment,
    summarise,
)
from repro.experiments.harness import format_table, build_evaluator, random_package_vectors, random_preference_directions
from repro.sampling.constraints import ConstraintChecker
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def fig5_results(scale):
    from bench_utils import write_results

    results = run_constraint_checking_experiment(
        feature_values=(3, 5, 7),
        sample_values=(100, 200, 300),
        gaussian_values=(1, 3, 5),
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["sweep", "value", "naive_s", "pruned_s", "speedup", "eval_reduction"],
        summarise(results),
    )
    header = "Figure 5 — constraint checking before/after pruning"
    print("\n" + header)
    print(table)
    write_results("fig5_constraint_checking.txt", header + "\n" + table)
    for points in results.values():
        for point in points:
            assert point.evaluation_reduction >= 0.10
    return results


def test_fig5_shape_pruning_always_reduces_work(fig5_results):
    for points in fig5_results.values():
        for point in points:
            assert point.pruned_evaluations <= point.naive_evaluations
            # The paper's ">= 10% improvement" claim, measured on work done.
            assert point.evaluation_reduction >= 0.10


def test_fig5_shape_cost_grows_with_samples(fig5_results):
    sample_points = fig5_results["samples"]
    evaluations = [p.naive_evaluations for p in sample_points]
    assert evaluations == sorted(evaluations)


@pytest.fixture(scope="module")
def checking_workload(scale):
    rng = ensure_rng(0)
    evaluator = build_evaluator("UNI", scale, num_features=scale.num_features)
    _, vectors = random_package_vectors(evaluator, scale.num_packages, rng=rng)
    hidden = rng.uniform(-1, 1, scale.num_features)
    directions = random_preference_directions(
        vectors, scale.num_preferences, rng=rng, consistent_with=hidden
    )
    prior = GaussianMixture.default_prior(scale.num_features, rng=rng)
    samples = prior.sample(scale.num_samples, rng=rng)
    return directions, samples


def test_bench_fig5_naive_checking(benchmark, checking_workload, fig5_results):
    directions, samples = checking_workload
    checker = ConstraintChecker(directions)
    benchmark(lambda: checker.check_naive(samples))


def test_bench_fig5_pruned_checking(benchmark, checking_workload):
    directions, samples = checking_workload
    checker = ConstraintChecker(directions)
    benchmark(lambda: checker.check_pruned(samples))
