"""Legacy setup shim.

The environment this reproduction targets may not have the ``wheel`` package
available (fully offline machines), in which case modern PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  Keeping this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work everywhere;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
