"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.items import ItemCatalog
from repro.core.packages import Package, PackageEvaluator
from repro.core.profiles import AggregateProfile
from repro.core.preferences import Preference
from repro.core.utility import LinearUtility
from repro.sampling.base import ConstraintSet
from repro.sampling.ens import ens_from_weights
from repro.sampling.maintenance import HybridMaintenance, NaiveMaintenance, ThresholdMaintenance
from repro.baselines.skyline import skyline_of_vectors
from repro.topk.bruteforce import brute_force_top_k_packages
from repro.topk.package_search import TopKPackageSearcher

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

feature_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(3, 10), st.integers(2, 4)),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
)

aggregation_names = st.sampled_from(["sum", "avg", "max", "min"])


def build_evaluator(matrix, aggregations, phi):
    catalog = ItemCatalog(np.asarray(matrix, dtype=float))
    profile = AggregateProfile(list(aggregations[: catalog.num_features]))
    return PackageEvaluator(catalog, profile, phi)


class TestPackageProperties:
    @SETTINGS
    @given(items=st.lists(st.integers(0, 50), min_size=1, max_size=8))
    def test_package_items_sorted_unique(self, items):
        package = Package.of(items)
        assert list(package.items) == sorted(set(items))

    @SETTINGS
    @given(items=st.lists(st.integers(0, 50), min_size=1, max_size=8),
           extra=st.integers(0, 50))
    def test_add_preserves_membership(self, items, extra):
        package = Package.of(items)
        extended = package.add(extra)
        assert extra in extended.items
        assert set(package.items) <= set(extended.items)


class TestEvaluatorProperties:
    @SETTINGS
    @given(matrix=feature_matrices,
           aggregations=st.lists(aggregation_names, min_size=4, max_size=4),
           phi=st.integers(1, 4),
           data=st.data())
    def test_normalised_vectors_within_unit_box(self, matrix, aggregations, phi, data):
        evaluator = build_evaluator(matrix, aggregations, phi)
        size = data.draw(st.integers(1, min(phi, evaluator.catalog.num_items)))
        indices = data.draw(
            st.lists(
                st.integers(0, evaluator.catalog.num_items - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        vector = evaluator.vector(Package.of(indices))
        assert np.all(vector >= -1e-9)
        assert np.all(vector <= 1.0 + 1e-9)

    @SETTINGS
    @given(matrix=feature_matrices,
           aggregations=st.lists(aggregation_names, min_size=4, max_size=4),
           phi=st.integers(2, 4),
           data=st.data())
    def test_incremental_state_matches_direct_aggregation(self, matrix, aggregations, phi, data):
        evaluator = build_evaluator(matrix, aggregations, phi)
        size = data.draw(st.integers(1, min(phi, evaluator.catalog.num_items)))
        indices = data.draw(
            st.lists(
                st.integers(0, evaluator.catalog.num_items - 1),
                min_size=size, max_size=size, unique=True,
            )
        )
        package = Package.of(indices)
        state = evaluator.state_for_package(package)
        assert np.allclose(
            evaluator.state_vector(state), evaluator.vector(package), atol=1e-9
        )

    @SETTINGS
    @given(matrix=feature_matrices,
           weights=arrays(float, 4, elements=st.floats(0.0, 1.0, allow_nan=False, width=32)),
           phi=st.integers(2, 4))
    def test_set_monotone_utilities_never_decrease_when_adding_items(self, matrix, weights, phi):
        """If U is set-monotone, U(p ∪ {t}) >= U(p) for every item t."""
        evaluator = build_evaluator(matrix, ["sum", "max", "sum", "max"], phi)
        weights = np.asarray(weights, dtype=float)[: evaluator.num_features]
        utility = LinearUtility(weights)
        assume(utility.is_set_monotone(evaluator.profile))
        base = Package.of([0])
        base_value = evaluator.utility(base, utility.weights)
        for item in range(1, min(evaluator.catalog.num_items, phi)):
            extended = base.add(item)
            if extended.size > phi:
                continue
            assert evaluator.utility(extended, utility.weights) >= base_value - 1e-9


class TestPreferenceProperties:
    @SETTINGS
    @given(
        preferred=arrays(float, 3, elements=st.floats(0, 1, allow_nan=False, width=32)),
        other=arrays(float, 3, elements=st.floats(0, 1, allow_nan=False, width=32)),
        weights=arrays(float, 3, elements=st.floats(-1, 1, allow_nan=False, width=32)),
    )
    def test_preference_satisfaction_matches_utility_comparison(self, preferred, other, weights):
        assume(not np.allclose(preferred, other))
        preference = Preference.from_vectors(np.asarray(preferred), np.asarray(other))
        weights = np.asarray(weights, dtype=float)
        utility_gap = float((np.asarray(preferred) - np.asarray(other)) @ weights)
        assert preference.is_satisfied_by(weights) == (utility_gap >= 0)

    @SETTINGS
    @given(
        directions=arrays(
            float, st.tuples(st.integers(1, 6), st.just(3)),
            elements=st.floats(-1, 1, allow_nan=False, width=32),
        ),
        samples=arrays(
            float, st.tuples(st.integers(1, 20), st.just(3)),
            elements=st.floats(-1, 1, allow_nan=False, width=32),
        ),
    )
    def test_constraint_set_mask_consistent_with_per_sample_checks(self, directions, samples):
        constraints = ConstraintSet(np.asarray(directions, dtype=float))
        samples = np.asarray(samples, dtype=float)
        mask = constraints.valid_mask(samples)
        for i in range(samples.shape[0]):
            assert mask[i] == constraints.is_valid(samples[i])
            assert (constraints.violations(samples[i]) == 0) == mask[i]


class TestMaintenanceProperties:
    @SETTINGS
    @given(
        samples=arrays(
            float, st.tuples(st.integers(5, 60), st.just(3)),
            elements=st.floats(-1, 1, allow_nan=False, width=32),
        ),
        direction=arrays(float, 3, elements=st.floats(-1, 1, allow_nan=False, width=32)),
        gamma=st.floats(0.0, 0.2),
    )
    def test_all_strategies_find_the_same_violators(self, samples, direction, gamma):
        samples = np.asarray(samples, dtype=float)
        direction = np.asarray(direction, dtype=float)
        naive = NaiveMaintenance().find_violations(samples, direction)
        ta = ThresholdMaintenance()
        ta.prepare(samples)
        hybrid = HybridMaintenance(gamma)
        hybrid.prepare(samples)
        assert np.array_equal(
            naive.violating_indices, ta.find_violations(samples, direction).violating_indices
        )
        assert np.array_equal(
            naive.violating_indices,
            hybrid.find_violations(samples, direction).violating_indices,
        )


class TestEnsProperties:
    @SETTINGS
    @given(weights=arrays(float, st.integers(1, 50),
                          elements=st.floats(0.001, 100.0, allow_nan=False)))
    def test_ens_bounded_by_sample_count(self, weights):
        weights = np.asarray(weights, dtype=float)
        ens = ens_from_weights(weights)
        assert 1.0 - 1e-9 <= ens <= weights.shape[0] + 1e-9


class TestSkylineProperties:
    @SETTINGS
    @given(vectors=arrays(float, st.tuples(st.integers(2, 25), st.just(3)),
                          elements=st.floats(0, 1, allow_nan=False, width=32)))
    def test_skyline_points_are_mutually_non_dominating(self, vectors):
        vectors = np.asarray(vectors, dtype=float)
        skyline = skyline_of_vectors(vectors, np.ones(3))
        for i in skyline:
            for j in skyline:
                if i == j:
                    continue
                dominates = np.all(vectors[i] >= vectors[j]) and np.any(vectors[i] > vectors[j])
                assert not dominates


class TestSearchProperties:
    @SETTINGS
    @given(
        matrix=arrays(float, st.tuples(st.integers(4, 8), st.just(3)),
                      elements=st.floats(0.015625, 1.0, allow_nan=False, width=32)),
        aggregations=st.lists(aggregation_names, min_size=3, max_size=3),
        weights=arrays(float, 3, elements=st.floats(-1, 1, allow_nan=False, width=32)),
        k=st.integers(1, 4),
    )
    def test_topk_pkg_matches_brute_force(self, matrix, aggregations, weights, k):
        evaluator = build_evaluator(matrix, aggregations, phi=3)
        weights = np.asarray(weights, dtype=float)
        result = TopKPackageSearcher(evaluator).search(weights, k)
        expected = brute_force_top_k_packages(evaluator, weights, k)
        assert len(result.packages) == len(expected)
        assert np.allclose(result.utilities, [u for _, u in expected], atol=1e-7)
