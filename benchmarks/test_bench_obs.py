"""Benchmark: the telemetry overhead budget (tracing on vs off).

Not a paper figure — this holds the observability tentpole to its
acceptance axis: the unified telemetry layer (request spans, metrics
registry, slow-request sampling) must cost **at most 5% of p50 round serve
latency** when enabled with production settings, and a disabled facade must
be indistinguishable from no instrumentation at all (one attribute check
per site).

Method: identically seeded engines serve the same click stream serially —
one with ``Telemetry.disabled()`` (the default), one with tracing enabled
at production sampling settings (keep slow traces over 50 ms, sample every
10th) plus an in-memory sink.  Per-round ``recommend`` latencies are
collected; the run alternates off/on engines across ``TRIALS`` interleaved
trials and takes the best p50 per mode, which cancels machine drift the
same way the paired columnar bench does.  Determinism makes the served
rounds bit-identical across modes, so the latency delta is pure
instrumentation cost.

Headline metric asserted and recorded for the CI gate
(``tools/bench_gate.py``):

* ``telemetry_overhead_fraction`` — ``max(0, p50_on / p50_off - 1)``,
  ceiling 0.05.

The regenerated table lands in ``results/bench_obs.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.experiments.harness import ExperimentScale, build_evaluator
from repro.obs import InMemoryTraceSink, Telemetry
from repro.service import EngineConfig, RecommendationEngine
from repro.simulation.traffic import build_user_population, session_seed_for

#: Acceptance ceiling (pinned in tools/bench_gate.py).
MAX_OVERHEAD_FRACTION = 0.05

NUM_ITEMS = 500
NUM_FEATURES = 4
NUM_SESSIONS = 6
NUM_ROUNDS = 4
NUM_SAMPLES = 1_500
TRIALS = 3
CLICK_NOISE_PSI = 0.9

#: Production sampling settings for the enabled mode: slow-request keep
#: threshold and every-Nth sampling, per DESIGN.md "Observability".
SLOW_MS = 50.0
SAMPLE_EVERY = 10


def _engine(telemetry=None) -> RecommendationEngine:
    scale = ExperimentScale(
        num_tuples=NUM_ITEMS, num_packages=500, num_samples=200,
        num_preferences=200, num_features=NUM_FEATURES, num_gaussians=1,
        max_package_size=4, seed=0,
    )
    evaluator = build_evaluator("UNI", scale, num_features=NUM_FEATURES)
    elicitation = ElicitationConfig(
        k=3,
        num_random=2,
        max_package_size=3,
        num_samples=NUM_SAMPLES,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=100,
        search_items_cap=40,
        seed=0,
    )
    config = EngineConfig(elicitation=elicitation, seed=1)
    return RecommendationEngine(
        evaluator.catalog, evaluator.profile, config, telemetry=telemetry
    )


def _traced() -> Telemetry:
    return Telemetry(
        sink=InMemoryTraceSink(), slow_ms=SLOW_MS, sample_every=SAMPLE_EVERY
    )


def _run_workload(engine):
    """Serve the click stream; return per-round latencies and presented lists."""
    users = build_user_population(
        engine.evaluator,
        NUM_SESSIONS,
        identical_prefix=True,
        user_seed=0,
        noise_psi=CLICK_NOISE_PSI,
    )
    ids = [
        engine.create_session(
            seed=session_seed_for(0, index, identical_prefix=False)
        )
        for index in range(NUM_SESSIONS)
    ]
    latencies = []
    presented = []
    rounds = {}
    for sid in ids:
        tick = time.perf_counter()
        rounds[sid] = engine.recommend(sid)
        latencies.append(time.perf_counter() - tick)
    for _round in range(1, NUM_ROUNDS):
        for index, sid in enumerate(ids):
            engine.feedback(sid, users[index].click(rounds[sid].presented))
            tick = time.perf_counter()
            rounds[sid] = engine.recommend(sid)
            latencies.append(time.perf_counter() - tick)
            presented.append([p.items for p in rounds[sid].presented])
    return np.asarray(latencies), presented


@pytest.fixture(scope="module")
def obs_report():
    from bench_utils import record_ci_metric, write_results

    p50s_off, p50s_on = [], []
    rounds_off = rounds_on = None
    telemetry = None
    # Interleave off/on trials so slow-machine drift hits both modes alike.
    for _trial in range(TRIALS):
        off_times, rounds_off = _run_workload(_engine())
        telemetry = _traced()
        on_times, rounds_on = _run_workload(_engine(telemetry))
        p50s_off.append(float(np.median(off_times)))
        p50s_on.append(float(np.median(on_times)))
    p50_off = min(p50s_off)
    p50_on = min(p50s_on)
    overhead = max(0.0, p50_on / p50_off - 1.0) if p50_off else 0.0
    tracer_stats = telemetry.tracer.describe()

    header = (
        "Telemetry overhead — request tracing + metrics on the serve path\n"
        f"p50 round latency overhead {overhead * 100:.1f}% with tracing "
        f"enabled (ceiling {MAX_OVERHEAD_FRACTION * 100:.0f}%, CI-gated)"
    )
    body = "\n".join(
        [
            "[p50 round serve latency (asserted)]",
            f"  {NUM_SESSIONS} sessions x {NUM_ROUNDS} rounds, "
            f"{NUM_SAMPLES}-sample pools, best of {TRIALS} interleaved "
            f"trials per mode",
            f"  telemetry off: p50={p50_off * 1e3:.3f}ms "
            f"(trials: {', '.join(f'{p * 1e3:.3f}' for p in p50s_off)})",
            f"  telemetry on:  p50={p50_on * 1e3:.3f}ms "
            f"(trials: {', '.join(f'{p * 1e3:.3f}' for p in p50s_on)})",
            f"  overhead: {overhead * 100:.2f}% "
            f"(slow_ms={SLOW_MS}, sample_every={SAMPLE_EVERY})",
            "",
            "[tracer accounting, final enabled trial]",
            f"  traces finished={tracer_stats['traces_finished']} "
            f"kept={tracer_stats['traces_kept']} "
            f"sampled_out={tracer_stats['traces_sampled_out']}",
        ]
    )
    print("\n" + header + "\n\n" + body)
    write_results("bench_obs.txt", header + "\n\n" + body)
    record_ci_metric(
        "telemetry_overhead_fraction",
        overhead,
        source="benchmarks/test_bench_obs.py",
        description=(
            f"max(0, p50_on/p50_off - 1) of round serve latency with request "
            f"tracing enabled (slow_ms={SLOW_MS}, "
            f"sample_every={SAMPLE_EVERY}) vs the disabled facade, "
            f"{NUM_SESSIONS} sessions x {NUM_ROUNDS} rounds, best of "
            f"{TRIALS} interleaved trials"
        ),
        unit="frac",
        ceiling=MAX_OVERHEAD_FRACTION,
    )
    return {
        "overhead": overhead,
        "rounds_off": rounds_off,
        "rounds_on": rounds_on,
        "tracer_stats": tracer_stats,
    }


def test_overhead_within_budget(obs_report):
    """The acceptance headline: tracing costs <= 5% of p50 round latency."""
    assert obs_report["overhead"] <= MAX_OVERHEAD_FRACTION, (
        f"telemetry overhead {obs_report['overhead'] * 100:.1f}% exceeds the "
        f"{MAX_OVERHEAD_FRACTION * 100:.0f}% ceiling"
    )


def test_tracing_does_not_change_served_rounds(obs_report):
    """Determinism: the instrumented engine serves bit-identical rounds."""
    assert obs_report["rounds_off"] == obs_report["rounds_on"]


def test_sampling_actually_dropped_traces(obs_report):
    """The enabled mode ran with real sampling, not keep-everything."""
    stats = obs_report["tracer_stats"]
    assert stats["traces_finished"] > 0
    assert stats["traces_sampled_out"] > 0
