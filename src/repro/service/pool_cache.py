"""Shared caches for the serving engine (LRU + hit/miss accounting).

:class:`SamplePoolCache` maps canonical constraint-set fingerprints to
:class:`~repro.sampling.base.SamplePool` objects so concurrent sessions with
identical feedback prefixes share one pool of posterior weight samples
instead of re-sampling ``Pw`` from scratch.  Cached pools are treated as
immutable by convention: consumers must not modify ``pool.samples`` in place
(maintenance always builds a new pool via :meth:`SamplePool.subset` /
:meth:`SamplePool.concatenate`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.sampling.base import SamplePool


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Counters plus the derived hit rate, for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


class LruCache:
    """A size-bounded least-recently-used mapping with statistics.

    ``maxsize == 0`` produces a disabled cache: every ``get`` misses and
    ``put`` is a no-op.  That degenerate mode is how the engine's caching is
    switched off for baseline comparisons without branching at call sites.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshing its recency), or ``None`` on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: Hashable) -> Optional[Any]:
        """Like :meth:`get` but without touching the hit/miss statistics.

        For consumers that already know the entry's provenance — e.g. the
        engine fetching a pool its own prefetch just built, which would
        otherwise masquerade as a cache hit.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            return self._entries[key]
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh a value, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        self.stats.puts += 1
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value

    def record_miss(self) -> None:
        """Count a miss decided outside the cache (honest-miss accounting).

        Some consumers know an entry's provenance makes a lookup dishonest —
        e.g. the engine reading back a top-k result its own prefetch just
        computed, which must count as the miss the prefetch paid for, not a
        hit.  They fetch via :meth:`peek` and record the miss here, so the
        cache's own statistics stay the single source of truth instead of
        call sites reaching into ``cache.stats`` directly.
        """
        self.stats.misses += 1

    def pop(self, key: Hashable) -> Optional[Any]:
        """Remove and return the cached value, or ``None`` if absent.

        Statistics are untouched: a pop is ownership transfer (e.g. a pool
        shard moving an entry to its pinned set), not a lookup or an eviction.
        """
        return self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry (statistics are preserved)."""
        self._entries.clear()

    def keys(self):
        """Cached keys, least recently used first."""
        return list(self._entries.keys())


class SamplePoolCache(LruCache):
    """LRU cache of sample pools keyed by constraint-set fingerprints.

    Beyond the generic LRU behaviour it tracks how many sample draws were
    *saved*: every hit means one ``count``-sized pool did not have to be
    regenerated.
    """

    def __init__(self, maxsize: int) -> None:
        super().__init__(maxsize)
        self.samples_saved = 0

    def get(self, key: Hashable) -> Optional[SamplePool]:
        pool = super().get(key)
        if pool is not None:
            self.samples_saved += pool.size
        return pool

    def put(self, key: Hashable, pool: SamplePool) -> None:
        if not isinstance(pool, SamplePool):
            raise TypeError(f"SamplePoolCache stores SamplePool values, got {type(pool)!r}")
        super().put(key, pool)
