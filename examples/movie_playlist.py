"""Movie-playlist recommendation with noisy clicks and schema predicates.

A streaming-service scenario from the paper's introduction: recommend
*playlists* (packages) of movies rather than single titles.  This example
exercises the two §7 extensions on top of the basic loop:

* **noisy feedback** — the viewer mis-clicks 15% of the time (ψ = 0.85), and
  the samplers soften the feedback constraints accordingly instead of treating
  every click as ground truth;
* **schema predicates** — every recommended playlist must contain at least one
  "family friendly" title (high family-score feature) and at most one very
  long film.

Run with::

    python examples/movie_playlist.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateProfile,
    ElicitationConfig,
    ItemCatalog,
    LinearUtility,
    MaxCountPredicate,
    MinCountPredicate,
    NoiseModel,
    PackageRecommender,
    PredicateSet,
    SimulatedUser,
)


def main() -> None:
    rng = np.random.default_rng(21)
    num_movies = 300

    # Features: runtime (minutes), critic score, popularity, family score.
    runtime = rng.normal(110, 25, num_movies).clip(60, 220)
    critic = rng.beta(5, 2, num_movies)
    popularity = rng.random(num_movies)
    family = rng.beta(2, 3, num_movies)
    catalog = ItemCatalog(
        np.column_stack([runtime, critic, popularity, family]),
        feature_names=["runtime", "critic_score", "popularity", "family_score"],
    )

    # A playlist is scored by total runtime (people budget an evening), the
    # average critic score, the average popularity and the best family score.
    profile = AggregateProfile(
        ["sum", "avg", "avg", "max"], feature_names=catalog.feature_names
    )

    # Schema predicates: at least one family-friendly movie, at most one epic.
    family_friendly = [i for i in range(num_movies) if family[i] >= 0.6]
    epics = [i for i in range(num_movies) if runtime[i] >= 170]
    predicates = PredicateSet([
        MinCountPredicate(1, matching_items=family_friendly),
        MaxCountPredicate(1, matching_items=epics),
    ])

    config = ElicitationConfig(
        k=4,
        num_random=4,
        max_package_size=4,
        num_samples=100,
        sampler="mcmc",
        semantics="tkp",          # rank by probability of being a top playlist
        noise_psi=0.85,            # clicks are only 85% reliable
        search_sample_budget=20,   # bound per-round latency
        search_beam_width=400,
        search_items_cap=120,
        seed=2,
    )
    recommender = PackageRecommender(catalog, profile, config, predicates=predicates)

    # The viewer dislikes long playlists, loves critic favourites, is mildly
    # swayed by popularity and does not care about the family score themselves.
    viewer = SimulatedUser(
        true_utility=LinearUtility(np.array([-0.7, 0.9, 0.3, 0.0])),
        evaluator=recommender.evaluator,
        noise=NoiseModel(psi=0.85),
        rng=rng,
    )

    print("Hidden viewer weights:", viewer.true_utility.weights)
    print(f"{len(family_friendly)} family-friendly titles, {len(epics)} epics\n")

    for round_number in range(1, 7):
        round_ = recommender.recommend()
        clicked = viewer.click(round_.presented)
        added = recommender.feedback(clicked, round_.presented)
        best = round_.recommended[0]
        print(f"Round {round_number}: clicked {clicked.items} "
              f"({added} preferences added); best playlist {best.items} "
              f"with true utility {viewer.true_package_utility(best):.3f}")

    print("\nFinal playlists (every one satisfies the schema predicates):")
    for playlist in recommender.current_top_k():
        satisfied = predicates.satisfied_by(playlist, catalog)
        total_runtime = float(runtime[np.asarray(playlist.items)].sum())
        mean_critic = float(critic[np.asarray(playlist.items)].mean())
        print(f"  {playlist.items}  runtime {total_runtime:6.1f} min, "
              f"critic {mean_critic:.2f}, predicates ok: {satisfied}")


if __name__ == "__main__":
    main()
