"""Tests for the sorted-list access layer and the item-level threshold algorithm."""

import numpy as np
import pytest

from repro.core.items import ItemCatalog
from repro.topk.sorted_lists import SortedItemLists
from repro.topk.threshold import scan_top_k_items, top_k_items


class TestSortedItemLists:
    def test_accesses_best_items_first(self, small_random_catalog):
        weights = np.array([1.0, 0.0, 0.0, 0.0])
        lists = SortedItemLists(small_random_catalog, weights)
        first = lists.next_item()
        assert first == int(np.argmax(small_random_catalog.features[:, 0]))

    def test_negative_weight_accesses_smallest_first(self, small_random_catalog):
        weights = np.array([-1.0, 0.0, 0.0, 0.0])
        lists = SortedItemLists(small_random_catalog, weights)
        first = lists.next_item()
        assert first == int(np.argmin(small_random_catalog.features[:, 0]))

    def test_each_item_returned_once(self, small_random_catalog):
        weights = np.array([0.5, -0.5, 0.3, 0.1])
        lists = SortedItemLists(small_random_catalog, weights)
        seen = []
        while True:
            item = lists.next_item()
            if item is None:
                break
            seen.append(item)
        assert sorted(seen) == list(range(small_random_catalog.num_items))
        assert lists.num_accessed == small_random_catalog.num_items
        assert lists.exhausted()

    def test_zero_weights_have_no_lists(self, small_random_catalog):
        lists = SortedItemLists(small_random_catalog, np.zeros(4))
        assert lists.active_features == []
        assert lists.next_item() is None

    def test_boundary_vector_dominates_unaccessed_items(self, small_random_catalog):
        weights = np.array([1.0, -1.0, 0.5, 0.0])
        lists = SortedItemLists(small_random_catalog, weights)
        for _ in range(10):
            lists.next_item()
        tau = lists.boundary_vector()
        unaccessed = [
            i for i in range(small_random_catalog.num_items)
            if i not in set(lists.accessed_items())
        ]
        features = small_random_catalog.features
        for item in unaccessed:
            for j in lists.active_features:
                if weights[j] > 0:
                    assert features[item, j] <= tau[j] + 1e-12
                else:
                    assert features[item, j] >= tau[j] - 1e-12

    def test_boundary_vector_before_any_access(self, small_random_catalog):
        weights = np.array([1.0, -1.0, 0.0, 0.0])
        lists = SortedItemLists(small_random_catalog, weights)
        tau = lists.boundary_vector()
        assert tau[0] == pytest.approx(small_random_catalog.features[:, 0].max())
        assert tau[1] == pytest.approx(small_random_catalog.features[:, 1].min())
        assert tau[2] == 0.0

    def test_exhausted_boundary_vector_is_worst_values(self, small_random_catalog):
        weights = np.array([1.0, -1.0, 0.0, 0.0])
        lists = SortedItemLists(small_random_catalog, weights)
        tau = lists.exhausted_boundary_vector()
        assert tau[0] == pytest.approx(small_random_catalog.features[:, 0].min())
        assert tau[1] == pytest.approx(small_random_catalog.features[:, 1].max())

    def test_wrong_weight_length_rejected(self, small_random_catalog):
        with pytest.raises(ValueError):
            SortedItemLists(small_random_catalog, np.ones(3))


class TestTopKItems:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_full_scan(self, seed):
        rng = np.random.default_rng(seed)
        catalog = ItemCatalog(rng.random((200, 5)))
        weights = rng.uniform(-1, 1, 5)
        ta_result = top_k_items(catalog, weights, 10)
        scan_result = scan_top_k_items(catalog, weights, 10)
        assert [s for _, s in ta_result] == pytest.approx([s for _, s in scan_result])

    def test_terminates_early(self):
        rng = np.random.default_rng(0)
        catalog = ItemCatalog(rng.random((5000, 3)))
        weights = np.array([0.9, 0.5, 0.7])
        _, stats = top_k_items(catalog, weights, 5, return_stats=True)
        assert stats["items_accessed"] < catalog.num_items

    def test_k_larger_than_catalog(self):
        catalog = ItemCatalog(np.random.default_rng(0).random((4, 2)))
        result = top_k_items(catalog, np.array([1.0, 1.0]), 10)
        assert len(result) == 4

    def test_all_zero_weights(self):
        catalog = ItemCatalog(np.random.default_rng(0).random((10, 2)))
        result = top_k_items(catalog, np.zeros(2), 3)
        assert [i for i, _ in result] == [0, 1, 2]
        assert all(score == 0.0 for _, score in result)

    def test_invalid_k_rejected(self, small_random_catalog):
        with pytest.raises(ValueError):
            top_k_items(small_random_catalog, np.ones(4), 0)
        with pytest.raises(ValueError):
            scan_top_k_items(small_random_catalog, np.ones(4), 0)

    def test_negative_weights_rank_small_values_high(self):
        catalog = ItemCatalog(np.array([[0.1], [0.9], [0.5]]))
        result = top_k_items(catalog, np.array([-1.0]), 3)
        assert [i for i, _ in result] == [0, 2, 1]
