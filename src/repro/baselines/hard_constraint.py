"""Hard-constraint package composition — the baseline of Xie et al. (RecSys 2010).

The second alternative discussed in the paper's introduction fixes a hard
budget on some features (e.g. "total cost at most $500") and maximises a fixed
objective over the remaining features.  Its practical limitations (budgets set
too low give sub-optimal packages, budgets set too high give huge candidate
sets, and the per-feature importance is unknown) motivate the elicitation
approach.  This module implements the baseline so examples and benchmarks can
compare the two behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packages import Package, PackageEvaluator
from repro.utils.validation import require_vector


@dataclass(frozen=True)
class BudgetConstraint:
    """A hard upper bound on one aggregate feature of the package.

    Attributes
    ----------
    feature_index:
        Index of the constrained feature.
    upper_bound:
        Maximum allowed *normalised* aggregate value (the same scale the
        evaluator produces, i.e. within [0, 1]).
    """

    feature_index: int
    upper_bound: float

    def __post_init__(self) -> None:
        if self.feature_index < 0:
            raise ValueError(
                f"feature_index must be >= 0, got {self.feature_index}"
            )
        if self.upper_bound < 0:
            raise ValueError(f"upper_bound must be >= 0, got {self.upper_bound}")

    def satisfied_by(self, vector: np.ndarray) -> bool:
        """Whether a package feature vector satisfies the budget."""
        return float(vector[self.feature_index]) <= self.upper_bound + 1e-12


class HardConstraintRecommender:
    """Greedy budget-constrained package composition.

    Builds a package by repeatedly adding the item with the best
    marginal-objective-per-unit-of-budget ratio while every budget constraint
    stays satisfied — the standard greedy heuristic for this class of
    constrained optimisation problems.  Exact enumeration
    (:meth:`best_package_exhaustive`) is provided for small instances so tests
    can quantify the greedy gap.

    Parameters
    ----------
    evaluator:
        Package evaluator binding catalog, profile and maximum size.
    objective_weights:
        Linear objective over the package's normalised feature vector
        (only features *not* under a budget usually carry weight).
    budgets:
        Hard upper bounds on (normalised) aggregate feature values.
    """

    def __init__(
        self,
        evaluator: PackageEvaluator,
        objective_weights: np.ndarray,
        budgets: Sequence[BudgetConstraint],
    ) -> None:
        self.evaluator = evaluator
        self.objective_weights = require_vector(
            objective_weights, "objective_weights", length=evaluator.num_features
        )
        self.budgets = list(budgets)

    # ------------------------------------------------------------------ greedy
    def _satisfies_budgets(self, vector: np.ndarray) -> bool:
        return all(budget.satisfied_by(vector) for budget in self.budgets)

    def recommend(self) -> Optional[Tuple[Package, float]]:
        """Greedily build the best budget-feasible package (None if infeasible)."""
        current_items: List[int] = []
        current_state = self.evaluator.empty_state()
        current_utility = 0.0
        available = set(range(self.evaluator.catalog.num_items))
        for _ in range(self.evaluator.max_package_size):
            best_item = None
            best_state = None
            best_utility = current_utility
            for item in available:
                state = self.evaluator.state_add_item(current_state, item)
                vector = self.evaluator.state_vector(state)
                if not self._satisfies_budgets(vector):
                    continue
                utility = float(vector @ self.objective_weights)
                if utility > best_utility:
                    best_item, best_state, best_utility = item, state, utility
            if best_item is None:
                break
            current_items.append(best_item)
            current_state = best_state
            current_utility = best_utility
            available.discard(best_item)
        if not current_items:
            return None
        return Package.of(current_items), current_utility

    # ------------------------------------------------------------- exhaustive
    def best_package_exhaustive(
        self, item_indices: Optional[Sequence[int]] = None
    ) -> Optional[Tuple[Package, float]]:
        """Exact best budget-feasible package by enumeration (small instances only)."""
        best: Optional[Tuple[Package, float]] = None
        for package in self.evaluator.enumerate_packages(item_indices=item_indices):
            vector = self.evaluator.vector(package)
            if not self._satisfies_budgets(vector):
                continue
            utility = float(vector @ self.objective_weights)
            if best is None or utility > best[1] or (
                utility == best[1] and package.package_id < best[0].package_id
            ):
                best = (package, utility)
        return best

    # -------------------------------------------------------------- diagnosis
    def feasible_count(self, item_indices: Optional[Sequence[int]] = None) -> int:
        """Number of budget-feasible packages (illustrates the budget-too-high issue)."""
        count = 0
        for package in self.evaluator.enumerate_packages(item_indices=item_indices):
            if self._satisfies_budgets(self.evaluator.vector(package)):
                count += 1
        return count
