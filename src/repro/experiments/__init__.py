"""Experiment harness: one module per figure of the paper's evaluation (§5).

Every module exposes a ``run_*`` function returning plain dataclasses/dicts so
the results can be printed as the rows/series the paper plots, and a
``summarise`` helper used both by the benchmark suite and by EXPERIMENTS.md.
Scale parameters default to laptop-friendly sizes; pass ``paper_scale=True``
(where available) to use the paper's full sizes.
"""

from repro.experiments.harness import ExperimentScale, format_table
from repro.experiments.fig4_sampling_example import run_sampling_example
from repro.experiments.fig5_constraint_checking import run_constraint_checking_experiment
from repro.experiments.fig6_overall_time import run_overall_time_experiment
from repro.experiments.fig7_maintenance import (
    run_gamma_sweep,
    run_maintenance_experiment,
)
from repro.experiments.fig8_elicitation import run_elicitation_effectiveness
from repro.experiments.sample_quality import run_sample_quality_study

__all__ = [
    "ExperimentScale",
    "format_table",
    "run_sampling_example",
    "run_constraint_checking_experiment",
    "run_overall_time_experiment",
    "run_maintenance_experiment",
    "run_gamma_sweep",
    "run_elicitation_effectiveness",
    "run_sample_quality_study",
]
