"""Constraint-violation checking for weight-vector samples (§3.3).

Whatever sampler is used, every candidate weight vector must be checked
against the accumulated feedback constraints.  The paper optimises this in two
ways:

1. **Transitive reduction** of the preference DAG removes redundant
   constraints (handled by :class:`~repro.core.preferences.PreferenceStore`).
2. **Pruned checking** stops scanning a sample's constraints at the first
   violation and keeps frequently-violated constraints near the front of the
   scan order (an adaptive move-to-front heuristic), so invalid samples are
   discarded after touching only a few constraints.

:class:`ConstraintChecker` exposes a deliberately un-optimised baseline
(:meth:`check_naive`) and the optimised variant (:meth:`check_pruned`) so the
experiment behind Figure 5 can compare the two; both return identical validity
masks.  A fully vectorised fast path (:meth:`check_vectorised`) is what the
samplers use in production.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.preferences import PreferenceStore
from repro.utils.validation import require_matrix


@dataclass
class CheckReport:
    """Outcome of a bulk constraint check.

    Attributes
    ----------
    valid_mask:
        Boolean mask over the checked samples (True = satisfies everything).
    constraint_evaluations:
        Total number of (sample, constraint) dot products evaluated; the
        work metric that the Figure 5 experiment compares.
    """

    valid_mask: np.ndarray
    constraint_evaluations: int


class ConstraintChecker:
    """Check weight-vector samples against feedback half-space constraints.

    Parameters
    ----------
    directions:
        ``(c, m)`` matrix of half-space normals (``w`` valid iff every
        ``w · d >= 0``).
    """

    def __init__(self, directions: np.ndarray) -> None:
        self.directions = require_matrix(directions, "directions")
        self.num_constraints, self.num_features = self.directions.shape
        # Scan order used by the pruned checker; adapted as violations are found.
        self._order: List[int] = list(range(self.num_constraints))

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_store(cls, store: PreferenceStore, reduced: bool = True) -> "ConstraintChecker":
        """Build a checker from a preference store (optionally transitively reduced)."""
        return cls(store.directions(reduced=reduced))

    # ------------------------------------------------------------ fast variant
    def check_vectorised(self, samples: np.ndarray) -> np.ndarray:
        """Fully vectorised validity mask (production fast path)."""
        samples = require_matrix(samples, "samples", columns=self.num_features)
        if self.num_constraints == 0:
            return np.ones(samples.shape[0], dtype=bool)
        return np.all(samples @ self.directions.T >= 0.0, axis=1)

    # ---------------------------------------------------------- naive baseline
    def check_naive(self, samples: np.ndarray) -> CheckReport:
        """Check every constraint for every sample, with no early termination.

        This is the "before pruning" baseline of Figure 5: the amount of work
        is always ``num_samples × num_constraints`` dot products.
        """
        samples = require_matrix(samples, "samples", columns=self.num_features)
        num_samples = samples.shape[0]
        valid = np.ones(num_samples, dtype=bool)
        evaluations = 0
        for i in range(num_samples):
            sample = samples[i]
            sample_valid = True
            for c in range(self.num_constraints):
                evaluations += 1
                if float(self.directions[c] @ sample) < 0.0:
                    sample_valid = False
                    # No early exit: the naive checker keeps evaluating, which
                    # is what makes it the un-optimised baseline.
            valid[i] = sample_valid
        return CheckReport(valid, evaluations)

    # --------------------------------------------------------- pruned checking
    def check_pruned(self, samples: np.ndarray) -> CheckReport:
        """Early-terminating, adaptively ordered constraint checking.

        For each sample the constraints are scanned in the adaptive order; the
        scan stops at the first violation and the violated constraint is moved
        toward the front so subsequent (correlated) invalid samples are ruled
        out even faster.  The validity mask is identical to
        :meth:`check_naive`; only the amount of work differs.
        """
        samples = require_matrix(samples, "samples", columns=self.num_features)
        num_samples = samples.shape[0]
        valid = np.ones(num_samples, dtype=bool)
        evaluations = 0
        order = self._order
        for i in range(num_samples):
            sample = samples[i]
            violated_position: Optional[int] = None
            for position, constraint_index in enumerate(order):
                evaluations += 1
                if float(self.directions[constraint_index] @ sample) < 0.0:
                    violated_position = position
                    break
            if violated_position is not None:
                valid[i] = False
                # Move-to-front (by one hop toward the front) keeps the order
                # adaptive without wholesale re-sorting.
                if violated_position > 0:
                    order[violated_position - 1], order[violated_position] = (
                        order[violated_position],
                        order[violated_position - 1],
                    )
        return CheckReport(valid, evaluations)

    def reset_order(self) -> None:
        """Reset the adaptive scan order to the original constraint order."""
        self._order = list(range(self.num_constraints))
