"""Integration tests: telemetry wired through the serving stack.

Exercises the tentpole end to end: span trees for per-session, batched, and
process-shard requests (dispatcher admission → engine → pool fill → top-k
search → event-log append), alarm counters + structured trace events for
replay divergence and dispatcher shed/degrade, concurrent fill counters on
the thread backend, the consolidated ``engine.observe()`` tree, and the
guarantee that telemetry never changes what is served.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.elicitation import ElicitationConfig
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.obs import InMemoryTraceSink, Telemetry
from repro.service import (
    AdaptationConfig,
    AsyncRecommendationServer,
    EngineConfig,
    EventLogStore,
    RecommendationEngine,
    ReplayDivergenceError,
)
from repro.service.eventlog import EVENT_FEEDBACK


@pytest.fixture
def serving_catalog() -> ItemCatalog:
    rng = np.random.default_rng(11)
    return ItemCatalog(rng.random((30, 3)))


@pytest.fixture
def serving_profile() -> AggregateProfile:
    return AggregateProfile(["sum", "avg", "max"])


def fast_elicitation_config(**overrides) -> ElicitationConfig:
    defaults = dict(
        k=2,
        num_random=2,
        max_package_size=2,
        num_samples=40,
        sampler="mcmc",
        search_sample_budget=3,
        search_beam_width=60,
        search_items_cap=25,
        seed=0,
    )
    defaults.update(overrides)
    return ElicitationConfig(**defaults)


def traced_telemetry(**overrides) -> Telemetry:
    """A keep-everything telemetry instance for deterministic assertions."""
    defaults = dict(sink=InMemoryTraceSink(), slow_ms=0.0, sample_every=1)
    defaults.update(overrides)
    return Telemetry(**defaults)


def make_engine(catalog, profile, telemetry=None, store=None, **config_overrides):
    config = EngineConfig(
        elicitation=fast_elicitation_config(), seed=1, **config_overrides
    )
    return RecommendationEngine(
        catalog, profile, config, store=store, telemetry=telemetry
    )


def span_names(trace: dict) -> list:
    return [span["name"] for span in trace["spans"]]


def children_of(trace: dict, span_id) -> list:
    return [s["name"] for s in trace["spans"] if s["parent_id"] == span_id]


# ============================================================ span-tree shape
class TestRequestSpanTrees:
    def test_per_session_request_trace(self, serving_catalog, serving_profile):
        telemetry = traced_telemetry()
        engine = make_engine(serving_catalog, serving_profile, telemetry)
        sid = engine.create_session()
        engine.recommend(sid)
        (trace,) = telemetry.drain_traces()
        assert trace["root"] == "engine.recommend"
        names = span_names(trace)
        # Root → serve_round → {pool.build → pool.fill, search.topk}.
        assert names.index("engine.recommend") < names.index("engine.serve_round")
        by_name = {s["name"]: s for s in trace["spans"]}
        serve = by_name["engine.serve_round"]
        assert serve["attrs"]["topk_cached"] is False
        assert "pool_key" in serve["attrs"]
        assert children_of(trace, serve["span_id"]) == ["pool.build", "search.topk"]
        build = by_name["pool.build"]
        assert build["attrs"]["path"] == "sampled"
        assert children_of(trace, build["span_id"]) == ["pool.fill"]
        search = by_name["search.topk"]
        assert search["attrs"]["mode"] == "session"
        assert search["attrs"]["rows"] >= 1
        assert search["attrs"]["items_accessed"] >= 1

    def test_batched_request_trace(self, serving_catalog, serving_profile):
        telemetry = traced_telemetry()
        engine = make_engine(serving_catalog, serving_profile, telemetry)
        ids = [engine.create_session(seed=100 + i) for i in range(4)]
        engine.recommend_many(ids)
        (trace,) = telemetry.drain_traces()
        assert trace["root"] == "engine.recommend_many"
        by_name = {s["name"]: s for s in trace["spans"]}
        root = by_name["engine.recommend_many"]
        assert root["attrs"]["sessions"] == 4
        top = children_of(trace, root["span_id"])
        assert top[:2] == ["engine.prefetch_pools", "engine.prefetch_topk"]
        assert top.count("engine.serve_round") == 4
        # The batched fill and the shared walk both appear as children.
        prefetch_pools = by_name["engine.prefetch_pools"]
        assert children_of(trace, prefetch_pools["span_id"]) == ["pool.fill"]
        batched_search = by_name["search.topk"]
        assert batched_search["attrs"]["mode"] == "batched"
        assert batched_search["attrs"]["dedup_rate"] >= 0.0

    def test_process_shard_request_trace_end_to_end(
        self, serving_catalog, serving_profile, tmp_path
    ):
        """The acceptance bar: dispatcher → engine → fill → search → log,
        for a process-shard request, with the fill's worker PID on its span."""
        telemetry = traced_telemetry()
        engine = make_engine(
            serving_catalog,
            serving_profile,
            telemetry,
            store=EventLogStore(str(tmp_path / "log")),
            pool_shards=2,
            pool_shard_backend="process",
        )

        async def drive():
            server = AsyncRecommendationServer(
                engine, max_batch_size=4, max_wait=0.01
            )
            async with server:
                ids = [
                    await server.create_session(seed=100 + i) for i in range(4)
                ]
                await asyncio.gather(*[server.recommend(s) for s in ids])

        asyncio.run(drive())
        traces = [
            t
            for t in telemetry.drain_traces()
            if t["root"] == "dispatcher.dispatch"
        ]
        assert traces, "no dispatcher-rooted trace captured"
        trace = traces[0]
        names = span_names(trace)
        for required in (
            "dispatcher.queue_wait",
            "engine.recommend_many",
            "pool.fill",
            "search.topk",
            "eventlog.append",
        ):
            assert required in names, f"missing span {required}"
        fills = [s for s in trace["spans"] if s["name"] == "pool.fill"]
        import os

        worker_pids = {s["attrs"].get("worker_pid") for s in fills}
        assert worker_pids and None not in worker_pids
        assert os.getpid() not in worker_pids  # fills ran out-of-process
        engine.close_repository()

    def test_telemetry_does_not_change_served_rounds(
        self, serving_catalog, serving_profile
    ):
        plain = make_engine(serving_catalog, serving_profile)
        traced = make_engine(serving_catalog, serving_profile, traced_telemetry())

        def drive(engine):
            presented = []
            ids = [engine.create_session(seed=50 + i) for i in range(3)]
            for _ in range(3):
                rounds = engine.recommend_many(ids)
                presented.append(
                    [[p.items for p in r.presented] for r in rounds]
                )
                for sid, r in zip(ids, rounds):
                    engine.feedback(sid, 0)
            return presented

        assert drive(plain) == drive(traced)


# ==================================================================== alarms
class TestAlarms:
    def test_replay_divergence_fires_alarm_and_trace_event(
        self, serving_catalog, serving_profile, tmp_path
    ):
        store = EventLogStore(str(tmp_path / "log"))
        engine = make_engine(serving_catalog, serving_profile, store=store)
        sid = engine.create_session()
        round_ = engine.recommend(sid)
        engine.feedback(sid, 0)
        engine.recommend(sid)
        store.close()

        # Rewrite the logged click to a package that was never presented,
        # then replay through a telemetry-enabled engine.
        reopened = EventLogStore(str(tmp_path / "log"))
        bogus = [max(max(p.items) for p in round_.presented) + 1]
        for record in reopened._records.values():
            for event in record.events:
                if event["type"] == EVENT_FEEDBACK:
                    event["clicked"] = bogus
        telemetry = traced_telemetry()
        restarted = make_engine(
            serving_catalog, serving_profile, telemetry, store=reopened
        )
        with pytest.raises(ReplayDivergenceError):
            restarted.recommend(sid)
        assert telemetry.alarm_count("replay_divergence") == 1
        alarm_spans = [
            s
            for t in telemetry.drain_traces()
            for s in t["spans"]
            if s["name"] == "alarm.replay_divergence"
        ]
        assert len(alarm_spans) == 1
        assert alarm_spans[0]["attrs"]["session_id"] == sid
        reopened.close()

    def test_dispatcher_shed_alarm(self, serving_catalog, serving_profile):
        telemetry = traced_telemetry()
        engine = make_engine(serving_catalog, serving_profile, telemetry)

        async def drive():
            server = AsyncRecommendationServer(
                engine,
                max_batch_size=64,
                max_wait=0.05,
                max_pending=1,
                shed_mode="reject",
            )
            ids = [await server.create_session(seed=7 + i) for i in range(2)]
            results = await asyncio.gather(
                *[server.recommend(s) for s in ids], return_exceptions=True
            )
            await server.shutdown()
            return results

        results = asyncio.run(drive())
        assert telemetry.alarm_count("dispatcher_shed") == 1
        assert sum(isinstance(r, Exception) for r in results) == 1
        # The shed emitted its own always-kept single-span alarm trace.
        shed_traces = [
            t
            for t in telemetry.drain_traces()
            if t["root"] == "alarm.dispatcher_shed"
        ]
        assert len(shed_traces) == 1
        assert shed_traces[0]["kept_because"] == "alarm"

    def test_dispatcher_degrade_alarm(self, serving_catalog, serving_profile):
        telemetry = traced_telemetry()
        engine = make_engine(serving_catalog, serving_profile, telemetry)

        async def drive():
            server = AsyncRecommendationServer(
                engine,
                max_batch_size=64,
                max_wait=0.05,
                max_pending=1,
                shed_mode="degrade",
            )
            ids = [await server.create_session(seed=7 + i) for i in range(2)]
            # Warm the shared empty-prefix pool so a degraded serve can answer.
            warm = asyncio.ensure_future(server.recommend(ids[0]))
            await server.dispatcher.drain()
            await warm
            results = await asyncio.gather(
                *[server.recommend(s) for s in ids], return_exceptions=True
            )
            await server.shutdown()
            return results

        results = asyncio.run(drive())
        assert telemetry.alarm_count("dispatcher_degraded") >= 1
        assert not any(isinstance(r, Exception) for r in results)

    def test_adaptation_ess_alarm_counter_exists(
        self, serving_catalog, serving_profile
    ):
        """The adapter holds the facade; a forced gate rejection counts."""
        telemetry = traced_telemetry()
        engine = make_engine(
            serving_catalog,
            serving_profile,
            telemetry,
            pool_adaptation=AdaptationConfig(),
        )
        assert engine.pool_adapter.telemetry is telemetry
        engine.pool_adapter.telemetry.alarm(
            "adaptation_ess_rejected", key="k", ess=1.0, required=10.0
        )
        assert telemetry.alarm_count("adaptation_ess_rejected") == 1


# =========================================================== metrics wiring
class TestMetricsWiring:
    def test_thread_backend_fill_counters(self, serving_catalog, serving_profile):
        telemetry = traced_telemetry()
        engine = make_engine(
            serving_catalog,
            serving_profile,
            telemetry,
            pool_shards=4,
            pool_shard_backend="thread",
        )
        ids = [engine.create_session(seed=100 + i) for i in range(6)]
        for _ in range(2):
            rounds = engine.recommend_many(ids)
            for index, (sid, r) in enumerate(zip(ids, rounds)):
                engine.feedback(sid, index % len(r.presented))
        snap = engine.metrics_snapshot()
        fills_by_shard = snap["repro_pool_fills_total"]
        assert sum(fills_by_shard.values()) == engine.pool_repository.fills
        samples = snap["repro_pool_samples_filled_total"]
        assert sum(samples.values()) == sum(
            shard.samples_filled for shard in engine.pool_repository.shards
        )
        # Fill latency histograms observed once per fill.
        latency = snap["repro_pool_fill_seconds"]
        assert sum(h["count"] for h in latency.values()) == (
            engine.pool_repository.fills
        )
        engine.close_repository()

    def test_metrics_snapshot_mirrors_engine_stats(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile, traced_telemetry())
        sid = engine.create_session()
        engine.recommend(sid)
        engine.feedback(sid, 0)
        snap = engine.metrics_snapshot()
        stats = engine.stats()
        assert snap["repro_sessions_created"] == stats.sessions_created
        assert snap["repro_rounds_served"] == stats.rounds_served
        assert snap["repro_feedback_events"] == stats.feedback_events
        assert snap["repro_requests_total"] == {"api=recommend": 1.0}
        assert snap["repro_round_latency_seconds"]["count"] == 1

    def test_observe_tree_consolidates_everything(
        self, serving_catalog, serving_profile
    ):
        telemetry = traced_telemetry()
        engine = make_engine(serving_catalog, serving_profile, telemetry)

        async def drive():
            server = AsyncRecommendationServer(engine, max_wait=0.001)
            async with server:
                sid = await server.create_session()
                await server.recommend(sid)
            return server

        server = asyncio.run(drive())
        tree = server.observe()
        assert set(tree) >= {"engine", "metrics", "telemetry", "dispatcher"}
        assert tree["engine"]["rounds_served"] == 1
        assert tree["dispatcher"]["requests_completed"] == 1
        assert tree["telemetry"]["enabled"] is True
        assert "repro_requests_total" in tree["metrics"]
        # Prometheus exposition renders from the same registry.
        assert "repro_rounds_served" in server.metrics_text()

    def test_disabled_engine_has_inert_telemetry(
        self, serving_catalog, serving_profile
    ):
        engine = make_engine(serving_catalog, serving_profile)
        sid = engine.create_session()
        engine.recommend(sid)
        assert engine.telemetry.enabled is False
        assert engine.telemetry.drain_traces() == []
        tree = engine.observe()
        assert tree["telemetry"]["enabled"] is False
        assert tree["engine"]["rounds_served"] == 1
