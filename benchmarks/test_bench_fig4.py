"""Benchmark for Figure 4: acceptance behaviour of RS / IS / MS samplers.

Regenerates the series behind the paper's scatter plots: for each sampler, the
number of raw draws needed to collect the target number of valid samples given
two random preferences in two dimensions.  The asserted *shape* is the paper's
qualitative claim: rejection sampling wastes the most draws, the feedback-aware
samplers waste far fewer.
"""

import pytest

from repro.experiments.fig4_sampling_example import run_sampling_example, summarise
from repro.experiments.harness import format_table
from repro.sampling.base import ConstraintSet
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.importance import ImportanceSampler
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.sampling.rejection import RejectionSampler

import numpy as np


@pytest.fixture(scope="module")
def fig4_results(scale):
    from bench_utils import write_results

    results = run_sampling_example(
        num_valid_samples=100,
        num_packages=scale.num_packages,
        num_preferences=2,
        num_features=2,
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["sampler", "valid", "attempts", "acceptance", "ENS"], summarise(results)
    )
    header = "Figure 4 — sampler comparison (2 features, 2 preferences, 100 valid samples)"
    print("\n" + header)
    print(table)
    write_results("fig4_sampler_comparison.txt", header + "\n" + table)
    # Shape assertions (also enforced here so --benchmark-only runs check them).
    assert results["RS"].attempts >= results["IS"].attempts * 0.9
    assert all(results[name].valid_samples == 100 for name in ("RS", "IS", "MS"))
    return results


def test_fig4_shape_rejection_wastes_most(fig4_results):
    """RS needs at least as many raw draws as the feedback-aware samplers."""
    rs, is_, ms = fig4_results["RS"], fig4_results["IS"], fig4_results["MS"]
    assert rs.attempts >= is_.attempts * 0.9
    assert rs.acceptance_rate <= 1.0
    assert is_.acceptance_rate >= rs.acceptance_rate * 0.9
    assert ms.valid_samples == 100 and is_.valid_samples == 100 and rs.valid_samples == 100


@pytest.fixture(scope="module")
def tight_constraints():
    """A deliberately small valid region where the samplers separate clearly."""
    return ConstraintSet(np.array([
        [1.0, 0.0], [0.0, 1.0], [1.0, -0.3], [-0.3, 1.0],
    ]))


def bench_sampler(benchmark, sampler_cls, constraints, **kwargs):
    prior = GaussianMixture.default_prior(2, rng=0)
    sampler = sampler_cls(prior, rng=1, **kwargs)

    def run():
        return sampler.sample(100, constraints)

    pool = benchmark(run)
    assert pool.size == 100


def test_bench_fig4_rejection_sampling(benchmark, tight_constraints, fig4_results):
    bench_sampler(benchmark, RejectionSampler, tight_constraints)


def test_bench_fig4_importance_sampling(benchmark, tight_constraints):
    bench_sampler(benchmark, ImportanceSampler, tight_constraints)


def test_bench_fig4_mcmc_sampling(benchmark, tight_constraints):
    bench_sampler(benchmark, MetropolisHastingsSampler, tight_constraints)
