"""Benchmarks for Figure 7: sample-maintenance strategies and the γ sweep.

Figure 7(a): cost of locating violating samples per new-feedback bucket for the
naive scan, the TA-based search and the hybrid (Algorithm 1).  Figure 7(b):
hybrid/naive cost ratio as a function of γ.  The asserted shapes follow the
paper: TA wins when few samples are invalidated, the naive scan wins when many
are, and the hybrid never strays far from the better of the two.
"""

import numpy as np
import pytest

from repro.experiments.fig7_maintenance import (
    run_gamma_sweep,
    run_maintenance_experiment,
    summarise,
)
from repro.experiments.harness import format_table
from repro.sampling.maintenance import (
    HybridMaintenance,
    NaiveMaintenance,
    ThresholdMaintenance,
)


@pytest.fixture(scope="module")
def fig7_buckets(scale):
    from bench_utils import write_results

    buckets = run_maintenance_experiment(
        num_samples=2_000,
        num_preferences=300,
        num_features=scale.num_features,
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["bucket<=", "count", "naive_s", "ta_s", "hybrid_s"], summarise(buckets)
    )
    header = "Figure 7(a) — maintenance cost by number of violating samples"
    print("\n" + header)
    print(table)
    write_results("fig7a_maintenance_buckets.txt", header + "\n" + table)
    low = [b for b in buckets if b.bucket <= 5 and b.count > 0]
    assert low and all(b.ta_accesses < b.naive_accesses for b in low)
    return buckets


@pytest.fixture(scope="module")
def fig7_gammas(scale):
    from bench_utils import write_results

    points = run_gamma_sweep(
        gammas=(0.0, 0.025, 0.05, 0.075, 0.1),
        num_samples=2_000,
        num_preferences=150,
        num_features=scale.num_features,
        scale=scale,
        seed=0,
    )
    table = format_table(
        ["gamma", "ta/naive", "hybrid/naive"],
        [[p.gamma, p.ta_cost_ratio, p.hybrid_cost_ratio] for p in points],
    )
    header = "Figure 7(b) — cost ratio vs naive checking as gamma varies"
    print("\n" + header)
    print(table)
    write_results("fig7b_gamma_sweep.txt", header + "\n" + table)
    return points


def test_fig7_shape_ta_wins_with_few_violations(fig7_buckets):
    """TA touches far fewer samples than the naive scan when violations are rare."""
    low = [b for b in fig7_buckets if b.bucket <= 5 and b.count > 0]
    assert low, "expected some preferences with few violating samples"
    for bucket in low:
        assert bucket.ta_accesses < bucket.naive_accesses


def test_fig7_shape_ta_overhead_grows_with_violations(fig7_buckets):
    """The TA advantage shrinks (or reverses) as more samples violate the feedback."""
    populated = [b for b in fig7_buckets if b.count > 0]
    assert len(populated) >= 2
    low, high = populated[0], populated[-1]
    low_ratio = low.ta_accesses / max(low.naive_accesses, 1)
    high_ratio = high.ta_accesses / max(high.naive_accesses, 1)
    assert high_ratio >= low_ratio


def test_fig7_shape_hybrid_tracks_the_better_strategy(fig7_buckets):
    for bucket in fig7_buckets:
        if bucket.count == 0:
            continue
        best = min(bucket.naive_accesses, bucket.ta_accesses)
        assert bucket.hybrid_accesses <= bucket.naive_accesses * 1.6 + 1
        assert bucket.hybrid_accesses >= best * 0.5


def test_fig7b_shape_gamma_zero_close_to_naive(fig7_gammas):
    """With tiny γ the hybrid falls back almost immediately, behaving like naive."""
    first = fig7_gammas[0]
    assert first.gamma == 0.0
    assert first.hybrid_cost_ratio <= first.ta_cost_ratio * 1.2 or first.hybrid_cost_ratio <= 2.0


@pytest.fixture(scope="module")
def maintenance_pool():
    rng = np.random.default_rng(0)
    samples = rng.uniform(-1, 1, size=(5_000, 4))
    # A direction violated by very few samples (TA's sweet spot) ...
    rare = np.array([1.0, 1.0, 1.0, 1.0]) * 0.9
    # ... and one violated by roughly half the pool (naive's sweet spot).
    common = np.array([1.0, 0.0, 0.0, 0.0])
    return samples, rare, common


def test_bench_fig7_naive_maintenance(benchmark, maintenance_pool, fig7_buckets, fig7_gammas):
    samples, rare, _ = maintenance_pool
    strategy = NaiveMaintenance()
    benchmark(lambda: strategy.find_violations(samples, rare))


def test_bench_fig7_ta_maintenance_few_violations(benchmark, maintenance_pool):
    samples, rare, _ = maintenance_pool
    strategy = ThresholdMaintenance()
    strategy.prepare(samples)
    benchmark(lambda: strategy.find_violations(samples, rare))


def test_bench_fig7_hybrid_maintenance_many_violations(benchmark, maintenance_pool):
    samples, _, common = maintenance_pool
    strategy = HybridMaintenance(gamma=0.025)
    strategy.prepare(samples)
    benchmark(lambda: strategy.find_violations(samples, common))
