"""Tests for noise-model importance reweighting (repro.sampling.reweight)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.reweight import (
    downweight_violators,
    importance_reweight,
    pool_effective_sample_size,
    residual_resample,
    violation_weight_factors,
)


@pytest.fixture
def quadrant_constraints() -> ConstraintSet:
    """Valid region: the non-negative quadrant of R^2."""
    return ConstraintSet(np.array([[1.0, 0.0], [0.0, 1.0]]))


@pytest.fixture
def mixed_pool() -> SamplePool:
    """Three samples violating 0, 1 and 2 quadrant constraints respectively."""
    return SamplePool(
        np.array([[1.0, 1.0], [-1.0, 1.0], [-1.0, -1.0]]), np.ones(3)
    )


class TestViolationWeightFactors:
    def test_factors_are_powers_of_one_minus_psi(
        self, quadrant_constraints, mixed_pool
    ):
        factors = violation_weight_factors(
            mixed_pool.samples, quadrant_constraints, 0.9
        )
        np.testing.assert_allclose(factors, [1.0, 0.1, 0.01])

    def test_psi_one_is_the_hard_validity_indicator(
        self, quadrant_constraints, mixed_pool
    ):
        factors = violation_weight_factors(
            mixed_pool.samples, quadrant_constraints, 1.0
        )
        np.testing.assert_array_equal(factors, [1.0, 0.0, 0.0])

    def test_psi_zero_means_feedback_carries_no_information(
        self, quadrant_constraints, mixed_pool
    ):
        factors = violation_weight_factors(
            mixed_pool.samples, quadrant_constraints, 0.0
        )
        np.testing.assert_array_equal(factors, [1.0, 1.0, 1.0])

    def test_psi_out_of_range_raises(self, quadrant_constraints, mixed_pool):
        with pytest.raises(ValueError):
            violation_weight_factors(
                mixed_pool.samples, quadrant_constraints, 1.5
            )


class TestImportanceReweight:
    def test_identical_constraints_at_psi_one_is_byte_identical_reuse(
        self, quadrant_constraints
    ):
        """The acceptance anchor: ψ=1 + identical sets degenerates to reuse."""
        rng = np.random.default_rng(0)
        samples = np.abs(rng.normal(size=(50, 2)))  # all valid in the quadrant
        donor = SamplePool(samples, rng.random(50) + 0.5)
        adapted = importance_reweight(donor, quadrant_constraints, 1.0)
        assert adapted.samples.tobytes() == donor.samples.tobytes()
        assert adapted.weights.tobytes() == donor.weights.tobytes()

    def test_superset_at_psi_one_reduces_to_survival(
        self, quadrant_constraints, mixed_pool
    ):
        adapted = importance_reweight(mixed_pool, quadrant_constraints, 1.0)
        np.testing.assert_array_equal(adapted.weights, [1.0, 0.0, 0.0])

    def test_existing_importance_weights_are_multiplied(
        self, quadrant_constraints
    ):
        donor = SamplePool(
            np.array([[1.0, 1.0], [-1.0, 1.0]]), np.array([2.0, 4.0])
        )
        adapted = importance_reweight(donor, quadrant_constraints, 0.5)
        np.testing.assert_allclose(adapted.weights, [2.0, 2.0])

    def test_donor_pool_is_never_mutated(self, quadrant_constraints, mixed_pool):
        before_samples = mixed_pool.samples.copy()
        before_weights = mixed_pool.weights.copy()
        adapted = importance_reweight(mixed_pool, quadrant_constraints, 0.7)
        adapted.samples[0, 0] = 99.0
        adapted.weights[0] = 99.0
        adapted.stats["sampler"] = "adapted"
        np.testing.assert_array_equal(mixed_pool.samples, before_samples)
        np.testing.assert_array_equal(mixed_pool.weights, before_weights)
        assert "sampler" not in mixed_pool.stats


class TestDownweightViolators:
    def test_violators_scaled_by_one_minus_psi(self, mixed_pool):
        result = downweight_violators(mixed_pool, np.array([1.0, 0.0]), 0.9)
        np.testing.assert_allclose(result.weights, [1.0, 0.1, 0.1])

    def test_sequential_downweights_compose_to_the_full_reweight(
        self, quadrant_constraints, mixed_pool
    ):
        stepwise = mixed_pool
        for direction in quadrant_constraints.directions:
            stepwise = downweight_violators(stepwise, direction, 0.8)
        joint = importance_reweight(mixed_pool, quadrant_constraints, 0.8)
        np.testing.assert_allclose(stepwise.weights, joint.weights)

    def test_dimension_mismatch_raises(self, mixed_pool):
        with pytest.raises(ValueError):
            downweight_violators(mixed_pool, np.array([1.0, 0.0, 0.0]), 0.9)


class TestResidualResample:
    def test_deterministic_given_a_seeded_rng(self):
        rng = np.random.default_rng(3)
        pool = SamplePool(rng.normal(size=(20, 3)), rng.random(20))
        first = residual_resample(pool, 50, np.random.default_rng(7))
        second = residual_resample(pool, 50, np.random.default_rng(7))
        assert first.samples.tobytes() == second.samples.tobytes()

    def test_returns_uniform_weights_of_the_requested_size(self):
        pool = SamplePool(np.eye(4), np.array([8.0, 4.0, 2.0, 2.0]))
        resampled = residual_resample(pool, 16, np.random.default_rng(0))
        assert resampled.size == 16
        np.testing.assert_array_equal(resampled.weights, np.ones(16))

    def test_deterministic_part_replicates_by_floor_of_expected_copies(self):
        pool = SamplePool(np.eye(4), np.array([8.0, 4.0, 2.0, 2.0]))
        resampled = residual_resample(pool, 16, np.random.default_rng(0))
        # Expected copies are exactly integral (8, 4, 2, 2): no residual draw.
        counts = [
            int(np.sum(np.all(resampled.samples == row, axis=1)))
            for row in pool.samples
        ]
        assert counts == [8, 4, 2, 2]

    def test_all_zero_weights_resample_uniformly(self):
        pool = SamplePool(np.eye(3), np.zeros(3))
        resampled = residual_resample(pool, 9, np.random.default_rng(0))
        assert resampled.size == 9

    def test_empty_pool_and_bad_count_raise(self):
        with pytest.raises(ValueError):
            residual_resample(SamplePool.empty(2), 5)
        pool = SamplePool(np.eye(2), np.ones(2))
        with pytest.raises(ValueError):
            residual_resample(pool, 0)


class TestPoolEffectiveSampleSize:
    def test_uniform_weights_give_the_pool_size(self):
        pool = SamplePool(np.eye(5), np.ones(5))
        assert pool_effective_sample_size(pool) == pytest.approx(5.0)

    def test_all_zero_weights_give_zero_not_the_pool_size(self):
        """The conservative gate reading (SamplePool.effective_sample_size
        treats all-zero as uniform; the adaptation gate must not)."""
        pool = SamplePool(np.eye(5), np.zeros(5))
        assert pool_effective_sample_size(pool) == 0.0
        assert pool.effective_sample_size() == 5.0  # the documented contrast

    def test_accepts_raw_weight_arrays(self):
        assert pool_effective_sample_size(np.array([1.0, 1.0])) == pytest.approx(2.0)

    def test_skew_reduces_ess(self):
        skewed = pool_effective_sample_size(np.array([1.0, 0.01, 0.01]))
        assert 1.0 <= skewed < 1.2
