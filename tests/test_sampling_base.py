"""Tests for ConstraintSet and SamplePool."""

import numpy as np
import pytest

from repro.core.packages import Package
from repro.core.preferences import Preference, PreferenceStore
from repro.sampling.base import ConstraintSet, SamplePool


class TestConstraintSet:
    def test_empty_constraints_accept_everything(self):
        constraints = ConstraintSet.empty(3)
        assert constraints.is_empty()
        assert constraints.is_valid(np.array([0.5, -0.5, 0.1]))
        assert constraints.violations(np.array([1.0, 1.0, 1.0])) == 0

    def test_requires_dimension_when_empty(self):
        with pytest.raises(ValueError):
            ConstraintSet(None)

    def test_is_valid_half_space(self):
        constraints = ConstraintSet(np.array([[1.0, -1.0]]))
        assert constraints.is_valid(np.array([0.5, 0.2]))
        assert not constraints.is_valid(np.array([0.1, 0.5]))

    def test_valid_mask_and_violation_counts(self):
        constraints = ConstraintSet(np.array([[1.0, 0.0], [0.0, 1.0]]))
        samples = np.array([[0.5, 0.5], [-0.5, 0.5], [-0.5, -0.5]])
        assert np.array_equal(constraints.valid_mask(samples), [True, False, False])
        assert np.array_equal(constraints.violation_counts(samples), [0, 1, 2])

    def test_extended_appends_constraints(self):
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        extended = constraints.extended(np.array([0.0, 1.0]))
        assert len(extended) == 2
        assert len(constraints) == 1  # original untouched

    def test_extended_dimension_mismatch(self):
        with pytest.raises(ValueError):
            ConstraintSet(np.array([[1.0, 0.0]])).extended(np.array([1.0]))

    def test_from_preferences_and_store(self, paper_example_evaluator):
        p4, p3 = Package.of([0, 1]), Package.of([2])
        preference = Preference.from_packages(paper_example_evaluator, p4, p3)
        from_prefs = ConstraintSet.from_preferences([preference])
        assert len(from_prefs) == 1

        store = PreferenceStore(2)
        store.add(preference)
        from_store = ConstraintSet.from_store(store)
        assert len(from_store) == 1
        assert np.allclose(from_store.directions, from_prefs.directions)

    def test_from_empty_preferences_needs_dimension(self):
        constraints = ConstraintSet.from_preferences([], num_features=4)
        assert constraints.num_features == 4


class TestSamplePool:
    def test_unweighted_pool(self):
        pool = SamplePool.unweighted(np.zeros((5, 3)))
        assert pool.size == 5
        assert pool.num_features == 3
        assert np.allclose(pool.weights, 1.0)
        assert pool.effective_sample_size() == pytest.approx(5.0)

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SamplePool(np.zeros((3, 2)), np.ones(2))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            SamplePool(np.zeros((2, 2)), np.array([1.0, -1.0]))

    def test_normalised_weights(self):
        pool = SamplePool(np.zeros((2, 2)), np.array([1.0, 3.0]))
        assert np.allclose(pool.normalised_weights(), [0.25, 0.75])

    def test_normalised_weights_all_zero_fall_back_to_uniform(self):
        pool = SamplePool(np.zeros((4, 2)), np.zeros(4))
        assert np.allclose(pool.normalised_weights(), 0.25)

    def test_subset_by_mask(self):
        pool = SamplePool(np.arange(6.0).reshape(3, 2), np.array([1.0, 2.0, 3.0]))
        subset = pool.subset(np.array([True, False, True]))
        assert subset.size == 2
        assert np.allclose(subset.weights, [1.0, 3.0])

    def test_concatenate(self):
        first = SamplePool.unweighted(np.zeros((2, 2)))
        second = SamplePool.unweighted(np.ones((3, 2)))
        combined = first.concatenate(second)
        assert combined.size == 5
        assert np.allclose(combined.samples[-1], 1.0)

    def test_concatenate_with_empty(self):
        empty = SamplePool.empty(2)
        pool = SamplePool.unweighted(np.ones((2, 2)))
        assert empty.concatenate(pool).size == 2
        assert pool.concatenate(empty).size == 2

    def test_mean_weight_vector_importance_weighted(self):
        samples = np.array([[0.0, 0.0], [1.0, 1.0]])
        pool = SamplePool(samples, np.array([1.0, 3.0]))
        assert np.allclose(pool.mean_weight_vector(), [0.75, 0.75])

    def test_mean_of_empty_pool_raises(self):
        with pytest.raises(ValueError):
            SamplePool.empty(3).mean_weight_vector()

    def test_effective_sample_size_degrades_with_skewed_weights(self):
        balanced = SamplePool(np.zeros((4, 1)), np.ones(4))
        skewed = SamplePool(np.zeros((4, 1)), np.array([100.0, 1.0, 1.0, 1.0]))
        assert skewed.effective_sample_size() < balanced.effective_sample_size()


class TestInteriorPoint:
    def test_empty_constraints_give_the_origin(self):
        point = ConstraintSet.empty(3).interior_point()
        assert np.allclose(point, np.zeros(3))

    def test_interior_point_is_strictly_valid(self):
        rng = np.random.default_rng(0)
        hidden = rng.uniform(-1, 1, 8)
        hidden /= np.linalg.norm(hidden)
        directions = rng.normal(size=(40, 8))
        directions[directions @ hidden < 0] *= -1  # consistent feedback cone
        constraints = ConstraintSet(directions)
        point = constraints.interior_point()
        assert point is not None
        assert constraints.is_valid(point)
        # Strict slack against every constraint, not just boundary validity.
        assert (directions @ point > 0).all()

    def test_degenerate_cone_returns_none(self):
        flat = ConstraintSet(np.array([[1.0, 0.0], [-1.0, 0.0]]))
        assert flat.interior_point() is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSet.empty(2).interior_point(bound=0.0)


class TestFingerprintAndCopy:
    def test_fingerprint_is_order_and_sign_of_zero_invariant(self):
        a = ConstraintSet(np.array([[1.0, -0.5], [0.0, 0.25]]))
        b = ConstraintSet(np.array([[-0.0, 0.25], [1.0, -0.5]]))
        assert a.fingerprint() == b.fingerprint()

    def test_pool_copy_is_deep(self):
        pool = SamplePool.unweighted(np.ones((2, 2)), {"sampler": "RS"})
        clone = pool.copy()
        clone.samples[0, 0] = 9.0
        clone.stats["sampler"] = "other"
        assert pool.samples[0, 0] == 1.0
        assert pool.stats["sampler"] == "RS"
