"""Top-k query processing: items (classic TA) and packages (Top-k-Pkg, §4).

* :mod:`repro.topk.sorted_lists` — per-feature sorted item lists with
  round-robin access and the boundary value vector τ.
* :mod:`repro.topk.threshold` — the classical threshold algorithm for top-k
  *items*, a substrate the paper builds on (citing Ilyas et al.).
* :mod:`repro.topk.package_search` — the paper's ``Top-k-Pkg`` algorithm
  (Algorithms 2–4) for top-k *packages* under a fixed weight vector.
* :mod:`repro.topk.batch_search` — the vectorised batch variant: one shared
  sorted-list walk answering ``Top-k-Pkg`` for a whole matrix of weight
  vectors at once (the per-sample hot path of elicitation and serving).
* :mod:`repro.topk.bruteforce` — exhaustive package enumeration, used as a
  correctness oracle and for tiny instances such as the paper's Figure 1/2
  worked example.
"""

from repro.topk.sorted_lists import SortedItemLists
from repro.topk.threshold import top_k_items
from repro.topk.package_search import (
    PackageSearchResult,
    TopKPackageSearcher,
    canonical_package_utilities,
    canonical_package_vectors,
)
from repro.topk.batch_search import BatchTopKPackageSearcher, CandidateCarryover
from repro.topk.bruteforce import brute_force_top_k_packages, enumerate_package_space

__all__ = [
    "SortedItemLists",
    "top_k_items",
    "TopKPackageSearcher",
    "BatchTopKPackageSearcher",
    "CandidateCarryover",
    "PackageSearchResult",
    "canonical_package_utilities",
    "canonical_package_vectors",
    "brute_force_top_k_packages",
    "enumerate_package_space",
]
