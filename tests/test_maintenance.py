"""Tests for sample maintenance (§3.4, Algorithm 1, Figure 7)."""

import numpy as np
import pytest

from repro.sampling.base import ConstraintSet
from repro.sampling.maintenance import (
    HybridMaintenance,
    NaiveMaintenance,
    SampleMaintainer,
    ThresholdMaintenance,
)
from repro.sampling.rejection import RejectionSampler


@pytest.fixture
def sample_pool_matrix() -> np.ndarray:
    rng = np.random.default_rng(3)
    return rng.uniform(-1, 1, size=(500, 4))


def brute_force_violators(samples: np.ndarray, direction: np.ndarray) -> np.ndarray:
    return np.where(samples @ direction < 0)[0]


class TestNaiveMaintenance:
    def test_finds_exact_violators(self, sample_pool_matrix):
        direction = np.array([0.5, -0.2, 0.1, 0.3])
        result = NaiveMaintenance().find_violations(sample_pool_matrix, direction)
        assert np.array_equal(
            result.violating_indices, brute_force_violators(sample_pool_matrix, direction)
        )

    def test_accesses_every_sample(self, sample_pool_matrix):
        result = NaiveMaintenance().find_violations(sample_pool_matrix, np.ones(4))
        assert result.accesses == sample_pool_matrix.shape[0]
        assert result.strategy == "naive"


class TestThresholdMaintenance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_naive_on_random_directions(self, sample_pool_matrix, seed):
        rng = np.random.default_rng(seed)
        direction = rng.normal(size=4)
        ta = ThresholdMaintenance()
        ta.prepare(sample_pool_matrix)
        result = ta.find_violations(sample_pool_matrix, direction)
        assert np.array_equal(
            result.violating_indices, brute_force_violators(sample_pool_matrix, direction)
        )

    def test_early_termination_when_no_violators(self, sample_pool_matrix):
        # Every sample has all coordinates in [-1, 1]; the direction below is
        # satisfied by construction (samples shifted to be positive).
        positive_pool = np.abs(sample_pool_matrix)
        direction = np.ones(4)  # w · d >= 0 for all non-negative samples
        ta = ThresholdMaintenance()
        ta.prepare(positive_pool)
        result = ta.find_violations(positive_pool, direction)
        assert result.num_violations == 0
        # TA should prove the absence of violators without touching every sample.
        assert result.accesses < positive_pool.shape[0]

    def test_zero_direction_returns_nothing(self, sample_pool_matrix):
        ta = ThresholdMaintenance()
        ta.prepare(sample_pool_matrix)
        result = ta.find_violations(sample_pool_matrix, np.zeros(4))
        assert result.num_violations == 0
        assert result.accesses == 0

    def test_prepare_reused_across_directions(self, sample_pool_matrix):
        ta = ThresholdMaintenance()
        ta.prepare(sample_pool_matrix)
        first = ta.find_violations(sample_pool_matrix, np.array([1.0, 0.0, 0.0, 0.0]))
        second = ta.find_violations(sample_pool_matrix, np.array([0.0, -1.0, 0.0, 0.0]))
        assert first.strategy == "ta"
        assert second.num_violations > 0


class TestHybridMaintenance:
    @pytest.mark.parametrize("gamma", [0.0, 0.025, 0.1])
    def test_matches_naive_for_all_gammas(self, sample_pool_matrix, gamma):
        rng = np.random.default_rng(7)
        hybrid = HybridMaintenance(gamma)
        hybrid.prepare(sample_pool_matrix)
        for _ in range(5):
            direction = rng.normal(size=4)
            result = hybrid.find_violations(sample_pool_matrix, direction)
            assert np.array_equal(
                result.violating_indices,
                brute_force_violators(sample_pool_matrix, direction),
            )

    def test_falls_back_when_many_violations(self, sample_pool_matrix):
        # A direction violated by roughly half the pool forces the fall-back.
        direction = np.array([1.0, 0.0, 0.0, 0.0])
        hybrid = HybridMaintenance(gamma=0.0)
        hybrid.prepare(sample_pool_matrix)
        result = hybrid.find_violations(sample_pool_matrix, direction)
        assert result.strategy == "hybrid"
        assert result.fell_back

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            HybridMaintenance(gamma=-0.1)


class TestSampleMaintainer:
    def test_keeps_pool_size_with_replacement(self, two_dim_prior):
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        sampler = RejectionSampler(two_dim_prior, rng=0)
        pool = sampler.sample(100, ConstraintSet.empty(2))
        maintainer = SampleMaintainer(NaiveMaintenance(), sampler)
        new_pool, result = maintainer.apply_feedback(
            pool, np.array([1.0, 0.0]), updated_constraints=constraints
        )
        assert new_pool.size == 100
        assert result.num_violations > 0
        assert np.all(constraints.valid_mask(new_pool.samples))

    def test_drop_only_mode(self, two_dim_prior):
        sampler = RejectionSampler(two_dim_prior, rng=0)
        pool = sampler.sample(100, ConstraintSet.empty(2))
        maintainer = SampleMaintainer(NaiveMaintenance(), sampler=None)
        new_pool, result = maintainer.apply_feedback(pool, np.array([0.0, 1.0]))
        assert new_pool.size == 100 - result.num_violations

    def test_no_violations_returns_same_pool(self, two_dim_prior):
        sampler = RejectionSampler(two_dim_prior, rng=0)
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        pool = sampler.sample(50, constraints)
        maintainer = SampleMaintainer(NaiveMaintenance(), sampler)
        new_pool, result = maintainer.apply_feedback(
            pool, np.array([1.0, 0.0]), updated_constraints=constraints
        )
        assert result.num_violations == 0
        assert new_pool is pool

    def test_replacement_requires_constraints(self, two_dim_prior):
        sampler = RejectionSampler(two_dim_prior, rng=0)
        pool = sampler.sample(50, ConstraintSet.empty(2))
        maintainer = SampleMaintainer(NaiveMaintenance(), sampler)
        with pytest.raises(ValueError):
            maintainer.apply_feedback(pool, np.array([1.0, 0.0]))

    def test_maintained_pool_matches_lemma1_distribution(self, two_dim_prior):
        """Maintenance preserves the truncated-prior distribution (Lemma 1).

        Keeping survivors and topping up with fresh constrained samples should
        give the same distribution as sampling from scratch under the full
        constraint set; we compare means loosely.
        """
        sampler = RejectionSampler(two_dim_prior, rng=0)
        constraints = ConstraintSet(np.array([[1.0, 0.0]]))
        pool = sampler.sample(3000, ConstraintSet.empty(2))
        maintainer = SampleMaintainer(NaiveMaintenance(), sampler)
        maintained, _ = maintainer.apply_feedback(
            pool, np.array([1.0, 0.0]), updated_constraints=constraints
        )
        fresh = RejectionSampler(two_dim_prior, rng=99).sample(3000, constraints)
        assert np.allclose(
            maintained.samples.mean(axis=0), fresh.samples.mean(axis=0), atol=0.06
        )


class TestSoftMaintenance:
    def _weighted_pool(self, samples):
        from repro.sampling.base import SamplePool

        rng = np.random.default_rng(7)
        return SamplePool(samples, rng.random(samples.shape[0]) + 0.5)

    def test_violators_are_downweighted_not_dropped(self, sample_pool_matrix):
        pool = self._weighted_pool(sample_pool_matrix)
        direction = np.array([0.5, -0.2, 0.1, 0.3])
        maintainer = SampleMaintainer(HybridMaintenance())
        new_pool, result = maintainer.soft_apply_feedback(pool, direction, psi=0.9)
        violators = brute_force_violators(sample_pool_matrix, direction)
        assert result.num_violations == violators.shape[0]
        assert new_pool.size == pool.size  # nothing removed, nothing sampled
        np.testing.assert_allclose(
            new_pool.weights[violators], pool.weights[violators] * 0.1
        )
        keep = np.setdiff1d(np.arange(pool.size), violators)
        np.testing.assert_array_equal(new_pool.weights[keep], pool.weights[keep])

    def test_psi_one_zeroes_the_violators(self, sample_pool_matrix):
        pool = self._weighted_pool(sample_pool_matrix)
        direction = np.array([0.5, -0.2, 0.1, 0.3])
        maintainer = SampleMaintainer(NaiveMaintenance())
        new_pool, result = maintainer.soft_apply_feedback(pool, direction, psi=1.0)
        assert np.all(new_pool.weights[result.violating_indices] == 0.0)

    def test_no_violators_returns_the_pool_unchanged(self, sample_pool_matrix):
        pool = self._weighted_pool(np.abs(sample_pool_matrix))
        maintainer = SampleMaintainer(NaiveMaintenance())
        new_pool, result = maintainer.soft_apply_feedback(
            pool, np.ones(4), psi=0.9
        )
        assert result.num_violations == 0
        assert new_pool is pool

    def test_strategy_accounting_still_applies(self, sample_pool_matrix):
        pool = self._weighted_pool(sample_pool_matrix)
        direction = np.array([0.5, -0.2, 0.1, 0.3])
        maintainer = SampleMaintainer(NaiveMaintenance())
        _new_pool, result = maintainer.soft_apply_feedback(pool, direction, psi=0.5)
        assert result.accesses == pool.size  # naive scans everything
        assert result.strategy == "naive"
