"""Random-number-generator helpers.

Every stochastic component of the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  These
helpers normalise that choice so experiments and tests are reproducible while
user-facing code stays ergonomic.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (use fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Child streams are statistically independent, so parallel experiment arms
    (e.g. one per simulated user) do not share random state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike, salt: Optional[int] = None) -> int:
    """Derive a deterministic integer seed from ``rng`` and an optional salt."""
    parent = ensure_rng(rng)
    base = int(parent.integers(0, 2**62 - 1))
    if salt is not None:
        base = (base * 1_000_003 + int(salt)) % (2**62 - 1)
    return base
