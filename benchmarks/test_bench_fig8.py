"""Benchmark for Figure 8: elicitation effectiveness on the NBA dataset.

Regenerates the clicks-until-convergence curve as the number of features grows
(simulated users with hidden ground-truth utilities, 5 recommended + 5 random
packages per round, MCMC sampling, EXP semantics).  Asserted shape: only a
handful of clicks are needed at every dimensionality, as the paper reports.
"""

import pytest

from repro.experiments.fig8_elicitation import run_elicitation_effectiveness, summarise

from repro.experiments.harness import format_table
from repro.core.elicitation import ElicitationConfig, PackageRecommender
from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile
from repro.data.nba import generate_nba_dataset
from repro.simulation.session import ElicitationSession
from repro.simulation.user import SimulatedUser

# The closed-loop elicitation sweep (5 feature counts x 3 users x up to 10
# rounds of sampling + package search) is a multi-minute pipeline; run it
# explicitly with `pytest benchmarks/test_bench_fig8.py -m slow`.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig8_points():
    from bench_utils import write_results

    points = run_elicitation_effectiveness(
        feature_counts=(2, 4, 6, 8, 10),
        num_users=3,
        num_players=250,
        k=5,
        num_random=5,
        num_samples=80,
        max_package_size=4,
        max_rounds=10,
        search_sample_budget=10,
        search_items_cap=60,
        seed=0,
    )
    table = format_table(
        ["features", "mean_clicks", "median", "max", "converged", "regret"],
        summarise(points),
    )
    header = "Figure 8 — clicks until the top-k list stabilises (NBA dataset)"
    print("\n" + header)
    print(table)
    write_results("fig8_elicitation_effectiveness.txt", header + "\n" + table)
    assert all(p.mean_clicks <= 10.0 for p in points)
    return points


def test_fig8_shape_few_clicks_needed(fig8_points):
    """The paper's claim: only a few feedback clicks are needed per query."""
    for point in fig8_points:
        assert point.mean_clicks <= 10.0


def test_fig8_shape_majority_of_sessions_converge(fig8_points):
    converged = [p.convergence_rate for p in fig8_points]
    assert sum(converged) / len(converged) >= 0.5


def test_fig8_shape_low_regret_after_elicitation(fig8_points):
    for point in fig8_points:
        assert point.mean_regret <= 0.25


def test_bench_fig8_single_elicitation_session(benchmark, fig8_points):
    data = generate_nba_dataset(200, 4, rng=0)
    catalog = ItemCatalog(data)
    profile = AggregateProfile(["sum", "avg", "max", "min"])

    def run_session():
        config = ElicitationConfig(
            k=5, num_random=5, max_package_size=4, num_samples=60,
            sampler="mcmc", search_sample_budget=15, search_beam_width=400,
            search_items_cap=120, seed=1,
        )
        recommender = PackageRecommender(catalog, profile, config)
        user = SimulatedUser.random(recommender.evaluator, rng=2)
        return ElicitationSession(recommender, user, max_rounds=8).run()

    result = benchmark.pedantic(run_session, rounds=1, iterations=1)
    assert result.rounds_run >= 1
