"""Micro-batching dispatcher: concurrent ``recommend`` calls → one batch.

The serving engine's batched paths (:meth:`RecommendationEngine.recommend_many`
→ shared pool fills → one across-session top-k walk) only pay off when many
sessions are served *in one call* — but network clients issue one request
each.  :class:`MicroBatchDispatcher` is the piece in between: concurrent
``recommend`` submissions accumulate in a window bounded by ``max_batch_size``
requests and ``max_wait`` seconds (whichever trips first, the classic group
commit rule), and the whole window is dispatched through ``recommend_many``.
Under load the window fills instantly and every dispatch amortises sampling
and search over up to ``max_batch_size`` sessions; an isolated request waits
at most ``max_wait`` and then takes a single-request fast path straight to
``engine.recommend``.

Concurrency model: the dispatcher is single-threaded asyncio.  Dispatch runs
synchronously on the event loop (the engine is CPU-bound and not
thread-safe), so concurrency buys *batching*, not parallelism — requests
that arrive while a batch is executing queue up and form the next window.

Error isolation: ``recommend_many`` is all-or-nothing (one unknown session id
fails the whole call), so a failing batch is re-served request by request —
every healthy request still gets its round and only the failing ones see
their exception.

Backpressure: ``max_pending`` caps how many requests the current window may
hold; a submission beyond it fails fast with
:class:`DispatcherOverloadedError` (counted as ``requests_shed``) instead of
growing the queue, so overload surfaces at admission where a client can back
off, not as unbounded latency.  With ``shed_mode="degrade"`` an overload
request is first offered a *degraded* serve — the engine's
``recommend_cached`` path, which answers from already-materialised pools
only and refuses to fill — so sessions whose state is hot still get a round
under overload (counted as ``requests_degraded``); only cache-missing
requests are shed.

Graceful shutdown: :meth:`aclose` refuses new submissions, then drains —
every request already admitted to the window is dispatched and resolved
before the coroutine returns.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.service.engine import PoolUnavailableError

__all__ = [
    "DispatcherClosedError",
    "DispatcherOverloadedError",
    "DispatcherStats",
    "MicroBatchDispatcher",
    "SHED_MODES",
]

#: Overload behaviours accepted by :class:`MicroBatchDispatcher`.
SHED_MODES = ("reject", "degrade")


class DispatcherClosedError(RuntimeError):
    """A request was submitted after :meth:`MicroBatchDispatcher.aclose`."""


class DispatcherOverloadedError(RuntimeError):
    """A request was shed: the pending window is at ``max_pending``.

    Raised synchronously inside :meth:`MicroBatchDispatcher.submit`, before
    the request is admitted — the shed request never occupies a window slot
    and its session is never advanced, so the caller can safely retry (with
    backoff) or degrade.
    """


@dataclass
class DispatcherStats:
    """Counters describing how requests were grouped and dispatched."""

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_cancelled: int = 0
    requests_shed: int = 0
    requests_degraded: int = 0
    batches_dispatched: int = 0
    shard_grouped_batches: int = 0
    size_flushes: int = 0
    timer_flushes: int = 0
    drain_flushes: int = 0
    fast_path_serves: int = 0
    batch_fallbacks: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests per dispatched batch (0.0 when idle)."""
        if not self.batches_dispatched:
            return 0.0
        return (self.requests_completed + self.requests_failed) / self.batches_dispatched

    def as_dict(self) -> dict:
        return {
            "requests_submitted": self.requests_submitted,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "requests_cancelled": self.requests_cancelled,
            "requests_shed": self.requests_shed,
            "requests_degraded": self.requests_degraded,
            "batches_dispatched": self.batches_dispatched,
            "shard_grouped_batches": self.shard_grouped_batches,
            "size_flushes": self.size_flushes,
            "timer_flushes": self.timer_flushes,
            "drain_flushes": self.drain_flushes,
            "fast_path_serves": self.fast_path_serves,
            "batch_fallbacks": self.batch_fallbacks,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
        }


class MicroBatchDispatcher:
    """Accumulate concurrent ``recommend`` requests and dispatch them batched.

    Parameters
    ----------
    engine:
        Anything with the engine's serving surface: ``recommend(session_id)``
        and ``recommend_many(session_ids)``.  Duck-typed so tests can observe
        batching with a stub.
    max_batch_size:
        Window flushes immediately once this many requests are pending.
    max_wait:
        Seconds the *first* request of a window waits for company before the
        window flushes anyway (the latency bound an idle-period request pays).
    max_pending:
        Backpressure cap on the pending window: a ``submit`` arriving while
        ``max_pending`` requests are already waiting is rejected with
        :class:`DispatcherOverloadedError` instead of being admitted (and
        counted in ``DispatcherStats.requests_shed``).  ``None`` (default)
        never sheds.  The cap binds when it is below ``max_batch_size`` —
        with dispatch running synchronously on the event loop, the size
        flush otherwise empties the window first — and it is the safety
        valve that keeps admission bounded if dispatch ever becomes
        asynchronous (an executor, a process pool).
    shed_mode:
        What happens to a request that hits the ``max_pending`` cap:
        ``"reject"`` (default) raises :class:`DispatcherOverloadedError`
        immediately; ``"degrade"`` first tries the engine's
        ``recommend_cached`` path — serve from the exact-match caches only,
        with pool fills refused — and only rejects when that too cannot
        answer (no cached pool, or an engine without the degraded surface).
        Degraded serves bypass the window entirely (they are the pressure
        *relief*, not more pressure) and are counted as
        ``DispatcherStats.requests_degraded``.
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 16,
        max_wait: float = 0.002,
        max_pending: Optional[int] = None,
        shed_mode: str = "reject",
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be > 0, got {max_batch_size}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_pending is not None and max_pending <= 0:
            raise ValueError(
                f"max_pending must be > 0 or None, got {max_pending}"
            )
        if shed_mode not in SHED_MODES:
            raise ValueError(
                f"shed_mode must be one of {SHED_MODES}, got {shed_mode!r}"
            )
        self.engine = engine
        self.max_batch_size = int(max_batch_size)
        self.max_wait = float(max_wait)
        self.max_pending = int(max_pending) if max_pending is not None else None
        self.shed_mode = shed_mode
        self.stats = DispatcherStats()
        # Pending window entries: (session_id, future, admission perf-time).
        # The admission time becomes the backdated ``dispatcher.queue_wait``
        # child span when the window dispatches under tracing.
        self._pending: List[Tuple[str, asyncio.Future, float]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._closed = False
        # Borrow the engine's telemetry facade (duck-typed: stub engines in
        # tests have none).  Sheds and degraded serves fire alarms through
        # it, and the dispatcher's counters join ``engine.observe()``.
        self.telemetry = getattr(engine, "telemetry", None)
        if self.telemetry is not None:
            self.telemetry.register_observable("dispatcher", self.stats.as_dict)

    # ----------------------------------------------------------------- window
    async def submit(self, session_id: str):
        """Enqueue one ``recommend`` request; resolves to its round.

        The request joins the current window.  The window is dispatched when
        it reaches ``max_batch_size`` (immediately, inside this call) or when
        ``max_wait`` elapses since its first request (on the loop's timer).
        """
        if self._closed:
            raise DispatcherClosedError("dispatcher is closed to new requests")
        if (
            self.max_pending is not None
            and len(self._pending) >= self.max_pending
        ):
            if self.shed_mode == "degrade":
                degraded = self._serve_degraded(session_id)
                if degraded is not None:
                    return degraded
            self.stats.requests_shed += 1
            if self.telemetry is not None:
                self.telemetry.alarm(
                    "dispatcher_shed",
                    session_id=session_id,
                    pending=len(self._pending),
                )
            raise DispatcherOverloadedError(
                f"dispatcher window is full ({self.max_pending} pending "
                f"requests); retry after the current window flushes"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((session_id, future, time.perf_counter()))
        self.stats.requests_submitted += 1
        if len(self._pending) >= self.max_batch_size:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait, self._flush, "timer")
        return await future

    def _serve_degraded(self, session_id: str):
        """Try the cache-only serve for an overload request; ``None`` to shed.

        Runs synchronously on the event loop — a degraded serve touches
        cached pools only, so it costs one top-k aggregation at most.  Any
        engine error other than "the pool is not cached" (unknown session,
        expired session) propagates to the caller as its own failure rather
        than masquerading as overload.
        """
        recommend_cached = getattr(self.engine, "recommend_cached", None)
        if recommend_cached is None:
            return None
        try:
            round_ = recommend_cached(session_id)
        except PoolUnavailableError:
            return None
        self.stats.requests_degraded += 1
        if self.telemetry is not None:
            self.telemetry.alarm("dispatcher_degraded", session_id=session_id)
        return round_

    @property
    def pending_requests(self) -> int:
        """Number of requests waiting in the current window."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    def _flush(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        if reason == "size":
            self.stats.size_flushes += 1
        elif reason == "timer":
            self.stats.timer_flushes += 1
        else:
            self.stats.drain_flushes += 1
        self._dispatch(batch)

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, batch: List[Tuple[str, asyncio.Future, float]]) -> None:
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            self._dispatch_batch(batch)
            return
        # The dispatch span is the trace root: the engine's recommend /
        # recommend_many spans nest under it, and each request's time in the
        # window appears as a backdated queue_wait child.
        with telemetry.span("dispatcher.dispatch", batch_size=len(batch)):
            now = time.perf_counter()
            for session_id, _future, admitted in batch:
                telemetry.record_child(
                    "dispatcher.queue_wait",
                    now - admitted,
                    start_perf=admitted,
                    session_id=session_id,
                )
            self._dispatch_batch(batch)

    def _dispatch_batch(
        self, batch: List[Tuple[str, asyncio.Future, float]]
    ) -> None:
        # A submitter may have been cancelled while waiting in the window
        # (asyncio.wait_for timeouts); serving its round would advance the
        # session for a caller that is gone, so drop done futures up front.
        live = [item for item in batch if not item[1].done()]
        self.stats.requests_cancelled += len(batch) - len(live)
        if not live:
            return
        batch = live
        self.stats.batches_dispatched += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        if len(batch) == 1:
            # Single-request fast path: skip recommend_many's pin/prefetch
            # machinery — there is nothing to batch.
            self.stats.fast_path_serves += 1
            session_id, future, _admitted = batch[0]
            try:
                self._resolve(future, self.engine.recommend(session_id))
            except Exception as exc:  # noqa: BLE001 - forwarded to the caller
                self._reject(future, exc)
            return
        batch = self._group_by_shard(batch)
        session_ids = [session_id for session_id, _future, _admitted in batch]
        try:
            rounds = self.engine.recommend_many(session_ids)
        except Exception:
            # recommend_many acquires every session before serving any, so
            # one bad id (unknown, expired) fails the whole call.  Re-serve
            # the batch request by request: healthy sessions still get their
            # round, only the failing ones see their own exception.  If the
            # failure instead hit mid-serve (rare: a pool build blowing up),
            # sessions served before it are served again — they receive a
            # *later* round than the discarded one, which the request/response
            # contract allows; the cost is the wasted partial batch.
            self.stats.batch_fallbacks += 1
            for session_id, future, _admitted in batch:
                try:
                    self._resolve(future, self.engine.recommend(session_id))
                except Exception as exc:  # noqa: BLE001
                    self._reject(future, exc)
            return
        for (_session_id, future, _admitted), round_ in zip(batch, rounds):
            self._resolve(future, round_)

    def _group_by_shard(
        self, batch: List[Tuple[str, asyncio.Future, float]]
    ) -> List[Tuple[str, asyncio.Future, float]]:
        """Order a window's requests by the shard that owns their next fill.

        Engines with a sharded pool repository expose ``fill_shard_plan``:
        which shard will fill each *pool-missing* session's next round.  The
        window is stably sorted so those sessions arrive at
        ``recommend_many`` contiguous per shard — one dispatch hands each
        shard one already-grouped ``fill_many`` batch.  Sessions with live
        pools (and engines without the surface) keep arrival order, and
        fills are key-deterministic, so reordering never changes any served
        round — only how evenly fill work lands across shard workers.
        """
        fill_shard_plan = getattr(self.engine, "fill_shard_plan", None)
        if fill_shard_plan is None or len(batch) <= 1:
            return batch
        plan = fill_shard_plan(
            [session_id for session_id, _future, _admitted in batch]
        )
        if len(set(plan.values())) <= 1:
            return batch  # 0-1 shards involved: nothing to group
        self.stats.shard_grouped_batches += 1
        # Pool-missing sessions first, grouped by owning shard; everyone else
        # (pool already live) after, in arrival order.  sort() is stable, so
        # arrival order is preserved within every group.
        return sorted(batch, key=lambda item: plan.get(item[0], float("inf")))

    def _resolve(self, future: asyncio.Future, round_) -> None:
        self.stats.requests_completed += 1
        if not future.done():  # the submitter may have been cancelled
            future.set_result(round_)

    def _reject(self, future: asyncio.Future, exc: Exception) -> None:
        self.stats.requests_failed += 1
        if not future.done():
            future.set_exception(exc)

    # --------------------------------------------------------------- shutdown
    async def drain(self) -> None:
        """Dispatch the current window immediately, without closing."""
        self._flush("drain")

    async def aclose(self) -> None:
        """Refuse new requests and drain everything already admitted.

        Dispatch is synchronous on the event loop, so when this returns every
        admitted request has been resolved (with a round or an exception).
        Idempotent.
        """
        self._closed = True
        self._flush("drain")
