"""Shared utilities: random-number handling, timing, and validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, TimingRecord
from repro.utils.validation import (
    require_matrix,
    require_positive,
    require_probability,
    require_vector,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "TimingRecord",
    "require_matrix",
    "require_positive",
    "require_probability",
    "require_vector",
]
