"""Item model: the set ``T`` of items with ``m`` numeric features.

The paper's problem setting (§2) assumes a set ``T`` of ``n`` items, each
represented by an ``m``-dimensional non-negative feature vector; individual
feature values may be ``null`` (the item does not carry that feature).
:class:`ItemCatalog` wraps the item–feature matrix, tracks nulls with a mask,
and exposes the per-feature statistics the rest of the system needs (maximum
values for normalisation, per-feature sorted orderings for the top-k search).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import require_matrix


class ItemCatalog:
    """A collection of items described by a numeric feature matrix.

    Parameters
    ----------
    features:
        ``(n, m)`` matrix of feature values.  Values must be non-negative
        (the paper assumes non-negative feature values w.l.o.g.); ``NaN``
        entries are interpreted as ``null`` (feature absent for that item).
    feature_names:
        Optional human-readable feature names; defaults to ``f1..fm``.
    item_ids:
        Optional external identifiers; defaults to ``0..n-1``.
    """

    def __init__(
        self,
        features: np.ndarray,
        feature_names: Optional[Sequence[str]] = None,
        item_ids: Optional[Sequence] = None,
    ) -> None:
        matrix = require_matrix(features, "features")
        if matrix.shape[0] == 0:
            raise ValueError("an ItemCatalog requires at least one item")
        finite = matrix[~np.isnan(matrix)]
        if finite.size and (finite < 0).any():
            raise ValueError(
                "feature values must be non-negative (the paper assumes "
                "non-negative values w.l.o.g.); found negative entries"
            )
        self._features = matrix
        self._null_mask = np.isnan(matrix)
        if feature_names is None:
            feature_names = [f"f{i + 1}" for i in range(matrix.shape[1])]
        if len(feature_names) != matrix.shape[1]:
            raise ValueError(
                f"expected {matrix.shape[1]} feature names, got {len(feature_names)}"
            )
        self.feature_names: List[str] = list(feature_names)
        if item_ids is None:
            item_ids = list(range(matrix.shape[0]))
        if len(item_ids) != matrix.shape[0]:
            raise ValueError(
                f"expected {matrix.shape[0]} item ids, got {len(item_ids)}"
            )
        self.item_ids = list(item_ids)

    # ------------------------------------------------------------------ shape
    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self._features.shape[0]

    @property
    def num_features(self) -> int:
        """Number of features ``m``."""
        return self._features.shape[1]

    def __len__(self) -> int:
        return self.num_items

    # ------------------------------------------------------------------ access
    @property
    def features(self) -> np.ndarray:
        """The raw ``(n, m)`` feature matrix (NaN marks null values)."""
        return self._features

    @property
    def null_mask(self) -> np.ndarray:
        """Boolean ``(n, m)`` mask; ``True`` where the feature value is null."""
        return self._null_mask

    def feature_values(self, item_index: int) -> np.ndarray:
        """Feature vector of one item (may contain NaN for null features)."""
        return self._features[item_index]

    def feature_column(self, feature_index: int, fill_null: float = 0.0) -> np.ndarray:
        """Values of one feature across all items, with nulls filled."""
        column = self._features[:, feature_index].copy()
        column[np.isnan(column)] = fill_null
        return column

    def filled(self, fill_null: float = 0.0) -> np.ndarray:
        """Copy of the feature matrix with null values replaced by ``fill_null``."""
        matrix = self._features.copy()
        matrix[self._null_mask] = fill_null
        return matrix

    def has_nulls(self) -> bool:
        """Whether any item has a null feature value."""
        return bool(self._null_mask.any())

    # ------------------------------------------------------------------ stats
    def feature_max(self) -> np.ndarray:
        """Per-feature maximum value over items (nulls ignored, 0 if all null)."""
        filled = self.filled(0.0)
        return filled.max(axis=0)

    def feature_min(self) -> np.ndarray:
        """Per-feature minimum value over non-null items (0 if all null)."""
        matrix = self._features.copy()
        matrix[self._null_mask] = np.inf
        mins = matrix.min(axis=0)
        mins[~np.isfinite(mins)] = 0.0
        return mins

    def argsort_feature(self, feature_index: int, descending: bool = True) -> np.ndarray:
        """Indices of items sorted by one feature (nulls sort last)."""
        column = self._features[:, feature_index].copy()
        if descending:
            column[np.isnan(column)] = -np.inf
            return np.argsort(-column, kind="stable")
        column[np.isnan(column)] = np.inf
        return np.argsort(column, kind="stable")

    # ------------------------------------------------------------------ slicing
    def subset(self, indices: Iterable[int]) -> "ItemCatalog":
        """A new catalog restricted to ``indices`` (keeps ids and names)."""
        idx = np.asarray(list(indices), dtype=int)
        return ItemCatalog(
            self._features[idx],
            feature_names=self.feature_names,
            item_ids=[self.item_ids[i] for i in idx],
        )

    def select_features(self, feature_indices: Iterable[int]) -> "ItemCatalog":
        """A new catalog restricted to the given feature columns."""
        idx = list(feature_indices)
        return ItemCatalog(
            self._features[:, idx],
            feature_names=[self.feature_names[i] for i in idx],
            item_ids=self.item_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ItemCatalog(num_items={self.num_items}, "
            f"num_features={self.num_features})"
        )
