"""repro — reproduction of "Generating Top-k Packages via Preference Elicitation".

Xie, Lakshmanan and Wood, PVLDB 7(14), 2014.

The public API re-exports the pieces most users need:

* data model: :class:`ItemCatalog`, :class:`AggregateProfile`, :class:`Package`,
  :class:`PackageEvaluator`;
* the preference-elicitation recommender: :class:`PackageRecommender`,
  :class:`ElicitationConfig`;
* constrained samplers: :class:`RejectionSampler`, :class:`ImportanceSampler`,
  :class:`MetropolisHastingsSampler`;
* top-k package search: :class:`TopKPackageSearcher` (one weight vector),
  :class:`BatchTopKPackageSearcher` (a whole pool, one shared walk);
* ranking semantics: :class:`RankingSemantics`;
* dataset generators: :func:`load_benchmark_dataset`, :func:`generate_nba_dataset`;
* columnar catalog storage: :func:`write_catalog_store` /
  :func:`open_catalog_store` (memory-mapped catalogs) and the pushdown
  predicates :class:`NumericRangePredicate`, :class:`CategoryPredicate`,
  :class:`CatalogPredicateSet`;
* the online serving engine: :class:`RecommendationEngine`,
  :class:`EngineConfig`, :class:`TrafficSimulator`, and its
  fingerprint-partitioned pool state layer :class:`ShardedPoolRepository`
  with :class:`WarmStartPlanner`, the picklable fill seam :class:`FillSpec`
  with the process-parallel :class:`ProcessShardBackend`, and the
  approximate pool-reuse subsystem :class:`PoolAdapter`
  (:class:`AdaptationConfig`);
* the async front-end: :class:`AsyncRecommendationServer`,
  :class:`MicroBatchDispatcher`, :class:`AsyncTrafficSimulator`;
* observability: :class:`Telemetry` (request tracing + alarms),
  :class:`MetricsRegistry` (counters / gauges / log-bucketed histograms
  with Prometheus text exposition), :class:`JsonLinesTraceSink`.

See README.md for a quickstart and DESIGN.md for the architecture.
"""

from repro.core.items import ItemCatalog
from repro.core.profiles import AggregateProfile, Aggregation
from repro.core.packages import Package, PackageEvaluator
from repro.core.utility import LinearUtility, sample_random_utility
from repro.core.preferences import Preference, PreferenceCycleError, PreferenceStore
from repro.core.ranking import RankingSemantics
from repro.core.noise import NoiseModel
from repro.core.predicates import (
    MaxCountPredicate,
    MinCountPredicate,
    PackagePredicate,
    PredicateSet,
    SizePredicate,
)
from repro.core.elicitation import (
    ElicitationConfig,
    PackageRecommender,
    RecommendationRound,
)
from repro.sampling.base import ConstraintSet, SamplePool
from repro.sampling.gaussian_mixture import GaussianMixture
from repro.sampling.rejection import RejectionSampler
from repro.sampling.importance import ImportanceSampler
from repro.sampling.mcmc import MetropolisHastingsSampler
from repro.topk.package_search import PackageSearchResult, TopKPackageSearcher
from repro.topk.batch_search import BatchTopKPackageSearcher, CandidateCarryover
from repro.topk.bruteforce import brute_force_top_k_packages
from repro.data.datasets import load_benchmark_dataset
from repro.data.nba import generate_nba_dataset
from repro.data.columnar import (
    CatalogPredicate,
    CatalogPredicateSet,
    CategoryPredicate,
    NumericRangePredicate,
    open_catalog_store,
    write_catalog_store,
)
from repro.simulation.user import SimulatedUser
from repro.simulation.session import ElicitationSession
from repro.simulation.traffic import (
    AsyncLoadReport,
    AsyncTrafficSimulator,
    AsyncWorkloadSpec,
    LoadReport,
    TrafficSimulator,
    WorkloadSpec,
)
from repro.obs import (
    InMemoryTraceSink,
    JsonLinesTraceSink,
    MetricsRegistry,
    Telemetry,
    Tracer,
)
from repro.sampling.batch import BatchRejectionSampler
from repro.sampling.reweight import (
    ess_deficit,
    importance_reweight,
    residual_resample,
)
from repro.service import (
    AdaptationConfig,
    AdaptationStats,
    ConstraintSimilarityIndex,
    FillSpec,
    PoolAdapter,
    PoolUnavailableError,
    ProcessShardBackend,
    AsyncRecommendationServer,
    DispatcherClosedError,
    DispatcherOverloadedError,
    MicroBatchDispatcher,
    EngineConfig,
    EngineStats,
    EventLog,
    EventLogCorruptionError,
    EventLogStore,
    JsonSessionStore,
    MemorySessionStore,
    PoolRepository,
    ReplayDivergenceError,
    RetentionReport,
    mine_click_prefixes,
    RecommendationEngine,
    SamplePoolCache,
    SessionExpiredError,
    SessionManager,
    SessionNotFoundError,
    ShardedPoolRepository,
    SqliteSessionStore,
    WarmStartPlanner,
)

__version__ = "1.1.0"

__all__ = [
    "ItemCatalog",
    "AggregateProfile",
    "Aggregation",
    "Package",
    "PackageEvaluator",
    "LinearUtility",
    "sample_random_utility",
    "Preference",
    "PreferenceStore",
    "PreferenceCycleError",
    "RankingSemantics",
    "NoiseModel",
    "PackagePredicate",
    "PredicateSet",
    "MinCountPredicate",
    "MaxCountPredicate",
    "SizePredicate",
    "ElicitationConfig",
    "PackageRecommender",
    "RecommendationRound",
    "ConstraintSet",
    "SamplePool",
    "GaussianMixture",
    "RejectionSampler",
    "ImportanceSampler",
    "MetropolisHastingsSampler",
    "TopKPackageSearcher",
    "BatchTopKPackageSearcher",
    "CandidateCarryover",
    "PackageSearchResult",
    "brute_force_top_k_packages",
    "load_benchmark_dataset",
    "generate_nba_dataset",
    "CatalogPredicate",
    "CatalogPredicateSet",
    "CategoryPredicate",
    "NumericRangePredicate",
    "open_catalog_store",
    "write_catalog_store",
    "SimulatedUser",
    "ElicitationSession",
    "TrafficSimulator",
    "WorkloadSpec",
    "LoadReport",
    "AsyncTrafficSimulator",
    "AsyncWorkloadSpec",
    "AsyncLoadReport",
    "AsyncRecommendationServer",
    "MicroBatchDispatcher",
    "DispatcherClosedError",
    "DispatcherOverloadedError",
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    "InMemoryTraceSink",
    "JsonLinesTraceSink",
    "BatchRejectionSampler",
    "ess_deficit",
    "importance_reweight",
    "residual_resample",
    "AdaptationConfig",
    "AdaptationStats",
    "ConstraintSimilarityIndex",
    "PoolAdapter",
    "PoolUnavailableError",
    "RecommendationEngine",
    "EngineConfig",
    "EngineStats",
    "SessionManager",
    "SessionNotFoundError",
    "SessionExpiredError",
    "SamplePoolCache",
    "FillSpec",
    "PoolRepository",
    "ProcessShardBackend",
    "ShardedPoolRepository",
    "WarmStartPlanner",
    "MemorySessionStore",
    "JsonSessionStore",
    "SqliteSessionStore",
    "EventLog",
    "EventLogCorruptionError",
    "EventLogStore",
    "ReplayDivergenceError",
    "RetentionReport",
    "mine_click_prefixes",
    "__version__",
]
