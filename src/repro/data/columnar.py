"""Persistent columnar catalog store, opened with ``np.memmap``.

A catalog store is a directory holding the item–feature table column-major,
its derived access structures precomputed, and a JSON header:

```
store/
├── catalog.json   header: format, version, shape, names, digest,
│                  per-column summaries (min/max over non-null, null count)
├── columns.f64    (m, n) float64, C-order — each feature column contiguous
├── orders.i64     (2, m, n) int64 — [0] descending, [1] ascending
│                  per-feature stable argsort orders, nulls last
└── nulls.u8       (m, n) uint8 — per-column null bitmap
```

``write_catalog_store`` runs the full construction cost (validation,
argsorts, digest) exactly once; ``open_catalog_store`` attaches the three
flat files read-only via ``np.memmap`` and wraps them in
:class:`MmapBacking`, so a cold engine process gets a working
:class:`~repro.core.items.ItemCatalog` in milliseconds — the sorted orders
the Top-k-Pkg walk consumes are *read*, never recomputed, and N processes
mapping one store share a single page cache instead of holding N copies.

The module also provides predicate pushdown (:class:`NumericRangePredicate`,
:class:`CategoryPredicate`, :class:`CatalogPredicateSet`): predicates are
answered against the per-column summaries and the stored ascending orders by
binary search — O(log n) value reads plus the matching index span — before
any item row is materialized, so a selective search touches O(k + pruned
frontier) rows of a disk-resident catalog rather than scanning the table.

Stores are content-addressed: the header records a digest of the raw column
bytes (equal to ``ItemCatalog.content_digest()`` of the materialized
equivalent), and a process-wide registry maps digests to opened catalogs so
pool-fill worker processes resolve a catalog by digest and mmap it locally
instead of receiving feature arrays over a pipe.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.items import (
    ColumnSummary,
    ItemCatalog,
    catalog_content_digest,
    compute_feature_order,
)

STORE_FORMAT = "repro-columnar"
STORE_VERSION = 1
HEADER_FILE = "catalog.json"
COLUMNS_FILE = "columns.f64"
ORDERS_FILE = "orders.i64"
NULLS_FILE = "nulls.u8"


# --------------------------------------------------------------------- writing
def write_catalog_store(catalog: ItemCatalog, path: str) -> str:
    """Write ``catalog`` as a columnar store directory; returns the digest.

    Pays the full construction cost once: transposes the table to
    column-major, argsorts every feature in both desirability directions
    through :func:`~repro.core.items.compute_feature_order` (the same
    routine the materialized backing uses, so stored orders are
    bit-identical to live ones), and digests the raw column bytes.
    """
    os.makedirs(path, exist_ok=True)
    features = np.ascontiguousarray(
        np.asarray(catalog.features, dtype=np.float64).T
    )  # (m, n): each feature column contiguous
    m, n = features.shape
    nulls = np.isnan(features)

    orders = np.empty((2, m, n), dtype=np.int64)
    for j in range(m):
        orders[0, j] = compute_feature_order(features[j], descending=True)
        orders[1, j] = compute_feature_order(features[j], descending=False)

    digest = catalog_content_digest(features.T, nulls.T)

    columns_meta = []
    for j in range(m):
        valid = features[j][~nulls[j]]
        columns_meta.append(
            {
                "name": catalog.feature_names[j],
                "min": float(valid.min()) if valid.size else None,
                "max": float(valid.max()) if valid.size else None,
                "null_count": int(nulls[j].sum()),
            }
        )

    default_ids = catalog.item_ids == list(range(n))
    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "digest": digest,
        "num_items": n,
        "num_features": m,
        "feature_names": list(catalog.feature_names),
        "item_ids": None if default_ids else list(catalog.item_ids),
        "columns": columns_meta,
    }

    features.tofile(os.path.join(path, COLUMNS_FILE))
    orders.tofile(os.path.join(path, ORDERS_FILE))
    nulls.astype(np.uint8).tofile(os.path.join(path, NULLS_FILE))
    with open(os.path.join(path, HEADER_FILE), "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2)
        handle.write("\n")
    return digest


# --------------------------------------------------------------------- backing
class MmapBacking:
    """Catalog storage over a columnar store directory, mapped read-only.

    Attaching touches only the JSON header — the three data files are
    ``np.memmap``-ed, so rows are paged in lazily as a search reads them.
    ``argsort_feature`` returns a slice of the stored order file (no
    computation); column summaries come from the header; ``features`` is a
    lazy transposed view of the column-major table.
    """

    kind = "mmap"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        header_path = os.path.join(self.path, HEADER_FILE)
        with open(header_path, encoding="utf-8") as handle:
            header = json.load(handle)
        if header.get("format") != STORE_FORMAT:
            raise ValueError(
                f"{header_path}: not a {STORE_FORMAT} store "
                f"(format={header.get('format')!r})"
            )
        if header.get("version") != STORE_VERSION:
            raise ValueError(
                f"{header_path}: unsupported store version "
                f"{header.get('version')!r} (this build reads {STORE_VERSION})"
            )
        self.header = header
        n = int(header["num_items"])
        m = int(header["num_features"])
        self._n, self._m = n, m

        expected = {
            COLUMNS_FILE: m * n * 8,
            ORDERS_FILE: 2 * m * n * 8,
            NULLS_FILE: m * n,
        }
        for name, size in expected.items():
            file_path = os.path.join(self.path, name)
            actual = os.path.getsize(file_path)
            if actual != size:
                raise ValueError(
                    f"{file_path}: expected {size} bytes for shape "
                    f"({n} items x {m} features), found {actual}"
                )

        self._columns = np.memmap(
            os.path.join(self.path, COLUMNS_FILE),
            dtype=np.float64, mode="r", shape=(m, n),
        )
        self._orders = np.memmap(
            os.path.join(self.path, ORDERS_FILE),
            dtype=np.int64, mode="r", shape=(2, m, n),
        )
        self._nulls = np.memmap(
            os.path.join(self.path, NULLS_FILE),
            dtype=np.uint8, mode="r", shape=(m, n),
        )
        self._summaries: List[ColumnSummary] = [
            ColumnSummary(
                vmin=float("nan") if meta["min"] is None else float(meta["min"]),
                vmax=float("nan") if meta["max"] is None else float(meta["max"]),
                null_count=int(meta["null_count"]),
            )
            for meta in header["columns"]
        ]

    @property
    def features(self) -> np.ndarray:
        """Lazy ``(n, m)`` view — row indexing reads only the touched pages."""
        return self._columns.T

    @property
    def null_mask(self) -> np.ndarray:
        return self._nulls.view(np.bool_).T

    @property
    def num_items(self) -> int:
        return self._n

    @property
    def num_features(self) -> int:
        return self._m

    def feature_column(self, feature_index: int, fill_null: float = 0.0) -> np.ndarray:
        column = np.array(self._columns[feature_index], dtype=float)
        column[np.isnan(column)] = fill_null
        return column

    def argsort_feature(self, feature_index: int, descending: bool = True) -> np.ndarray:
        return self._orders[0 if descending else 1, feature_index]

    def column_summary(self, feature_index: int) -> ColumnSummary:
        return self._summaries[feature_index]

    def feature_top_values(self, feature_index: int, count: int) -> np.ndarray:
        order = np.asarray(
            self._orders[0, feature_index, :count], dtype=np.int64
        )
        values = self._columns[feature_index][order]
        return np.where(np.isnan(values), 0.0, values)

    def content_digest(self) -> str:
        return self.header["digest"]

    def verify_digest(self) -> bool:
        """Recompute the content digest from the mapped data (reads it all)."""
        return (
            catalog_content_digest(self.features, self.null_mask)
            == self.header["digest"]
        )


def open_catalog_store(path: str) -> ItemCatalog:
    """Open a columnar store directory as an mmap-backed :class:`ItemCatalog`.

    Reads only the header eagerly; validation ran at write time, so this is
    a millisecond attach however large the catalog is.
    """
    backing = MmapBacking(path)
    return ItemCatalog.from_backing(
        backing,
        feature_names=backing.header["feature_names"],
        item_ids=backing.header["item_ids"],
    )


# -------------------------------------------------------------- digest registry
_REGISTRY_LOCK = threading.Lock()
_LOCATIONS: Dict[str, str] = {}
_OPENED: Dict[str, ItemCatalog] = {}


def register_catalog_location(digest: str, path: str) -> None:
    """Record where the store with ``digest`` lives on this host.

    Called engine-side when a fill context references a catalog, and (via
    ``register_fill_context``) in pool-fill worker initializers — so a
    worker process resolves the catalog by digest and mmaps the store
    locally instead of receiving the feature matrix over a pipe.
    """
    with _REGISTRY_LOCK:
        _LOCATIONS.setdefault(digest, os.path.abspath(path))


def known_catalog_locations() -> Dict[str, str]:
    """Snapshot of the digest → store-path registry (for shipping to workers)."""
    with _REGISTRY_LOCK:
        return dict(_LOCATIONS)


def open_catalog_by_digest(digest: str) -> ItemCatalog:
    """Open (or return the already-opened) catalog with this content digest."""
    with _REGISTRY_LOCK:
        catalog = _OPENED.get(digest)
        if catalog is not None:
            return catalog
        path = _LOCATIONS.get(digest)
    if path is None:
        raise KeyError(
            f"no catalog store registered for digest {digest!r}; call "
            "register_catalog_location(digest, path) first"
        )
    catalog = open_catalog_store(path)
    stored = catalog.content_digest()
    if stored != digest:
        raise ValueError(
            f"catalog store at {path} has digest {stored!r}, "
            f"expected {digest!r}"
        )
    with _REGISTRY_LOCK:
        return _OPENED.setdefault(digest, catalog)


# ------------------------------------------------------------------- predicates
def _resolve_feature(catalog: ItemCatalog, feature) -> int:
    if isinstance(feature, str):
        try:
            return catalog.feature_names.index(feature)
        except ValueError:
            raise KeyError(
                f"unknown feature {feature!r}; catalog has "
                f"{catalog.feature_names}"
            ) from None
    index = int(feature)
    if not 0 <= index < catalog.num_features:
        raise IndexError(
            f"feature index {index} out of range for "
            f"{catalog.num_features} features"
        )
    return index


def _bisect_order(
    catalog: ItemCatalog,
    feature_index: int,
    order: np.ndarray,
    limit: int,
    value: float,
    side: str,
) -> int:
    """Binary search over the non-null prefix of an ascending sort order.

    Returns the first position whose value is ``>= value`` (``side='left'``)
    or ``> value`` (``side='right'``), reading O(log n) scattered feature
    values through the order — never the whole column.
    """
    lo, hi = 0, limit
    features = catalog.features
    while lo < hi:
        mid = (lo + hi) // 2
        item_value = float(features[int(order[mid]), feature_index])
        if item_value < value or (side == "right" and item_value == value):
            lo = mid + 1
        else:
            hi = mid
    return lo


class CatalogPredicate:
    """A row-eligibility predicate evaluated against catalog storage.

    Subclasses implement ``_compute_mask`` using per-column summaries and
    the stored/cached ascending sort orders, so eligibility is decided
    *before* item rows are materialized.  The computed mask is memoized per
    catalog (identity-keyed), so repeated searches under one engine pay the
    pushdown cost once.
    """

    def __init__(self) -> None:
        self._mask_cache: Optional[Tuple[ItemCatalog, np.ndarray]] = None

    def eligible_mask(self, catalog: ItemCatalog) -> np.ndarray:
        cached = self._mask_cache
        if cached is not None and cached[0] is catalog:
            return cached[1]
        mask = self._compute_mask(catalog)
        self._mask_cache = (catalog, mask)
        return mask

    def _compute_mask(self, catalog: ItemCatalog) -> np.ndarray:
        raise NotImplementedError

    def matches_column(self, column: np.ndarray) -> np.ndarray:
        """Scan oracle: eligibility from raw values (NaN = null).  Test-only
        reference — the pushdown path must agree with it exactly."""
        raise NotImplementedError


class NumericRangePredicate(CatalogPredicate):
    """``low <= value <= high`` on one feature; null values are ineligible.

    Either bound may be omitted.  Evaluation first prunes against the
    column summary (a disjoint range answers from the header alone), then
    binary-searches the ascending stored order for the matching span —
    O(log n) value reads plus O(span) index writes.
    """

    def __init__(self, feature, low: Optional[float] = None, high: Optional[float] = None) -> None:
        super().__init__()
        if low is None and high is None:
            raise ValueError("a NumericRangePredicate needs at least one bound")
        if low is not None and high is not None and low > high:
            raise ValueError(f"empty range: low={low} > high={high}")
        self.feature = feature
        self.low = None if low is None else float(low)
        self.high = None if high is None else float(high)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NumericRangePredicate({self.feature!r}, "
            f"low={self.low}, high={self.high})"
        )

    def _compute_mask(self, catalog: ItemCatalog) -> np.ndarray:
        j = _resolve_feature(catalog, self.feature)
        n = catalog.num_items
        mask = np.zeros(n, dtype=bool)
        summary = catalog.column_summary(j)
        limit = n - summary.null_count  # non-null prefix of the sorted order
        if limit == 0:
            return mask
        if self.low is not None and not math.isnan(summary.vmax) and summary.vmax < self.low:
            return mask
        if self.high is not None and not math.isnan(summary.vmin) and summary.vmin > self.high:
            return mask
        order = catalog.argsort_feature(j, descending=False)
        start = (
            0
            if self.low is None
            else _bisect_order(catalog, j, order, limit, self.low, "left")
        )
        stop = (
            limit
            if self.high is None
            else _bisect_order(catalog, j, order, limit, self.high, "right")
        )
        if start < stop:
            mask[np.asarray(order[start:stop], dtype=np.int64)] = True
        return mask

    def matches_column(self, column: np.ndarray) -> np.ndarray:
        column = np.asarray(column, dtype=float)
        mask = ~np.isnan(column)
        if self.low is not None:
            mask &= column >= self.low
        if self.high is not None:
            mask &= column <= self.high
        return mask


class CategoryPredicate(CatalogPredicate):
    """Membership of one feature's value in a finite set of numeric codes.

    Category features are stored as numeric codes like any other column;
    each requested value resolves to one equal-value span of the ascending
    order by binary search, so evaluation costs O(|values| log n) value
    reads.  Null values are ineligible.
    """

    def __init__(self, feature, values: Iterable[float]) -> None:
        super().__init__()
        codes = sorted({float(v) for v in values})
        if not codes:
            raise ValueError("a CategoryPredicate needs at least one value")
        if any(math.isnan(code) for code in codes):
            raise ValueError("NaN is not a category code (nulls are ineligible)")
        self.feature = feature
        self.values = tuple(codes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CategoryPredicate({self.feature!r}, values={self.values})"

    def _compute_mask(self, catalog: ItemCatalog) -> np.ndarray:
        j = _resolve_feature(catalog, self.feature)
        n = catalog.num_items
        mask = np.zeros(n, dtype=bool)
        summary = catalog.column_summary(j)
        limit = n - summary.null_count
        if limit == 0:
            return mask
        order = catalog.argsort_feature(j, descending=False)
        for code in self.values:
            if not math.isnan(summary.vmin) and (
                code < summary.vmin or code > summary.vmax
            ):
                continue
            start = _bisect_order(catalog, j, order, limit, code, "left")
            stop = _bisect_order(catalog, j, order, limit, code, "right")
            if start < stop:
                mask[np.asarray(order[start:stop], dtype=np.int64)] = True
        return mask

    def matches_column(self, column: np.ndarray) -> np.ndarray:
        column = np.asarray(column, dtype=float)
        mask = np.zeros(column.shape, dtype=bool)
        for code in self.values:
            mask |= column == code
        return mask


class CatalogPredicateSet(CatalogPredicate):
    """Conjunction (AND) of catalog predicates."""

    def __init__(self, predicates: Sequence[CatalogPredicate]) -> None:
        super().__init__()
        predicates = list(predicates)
        if not predicates:
            raise ValueError("a CatalogPredicateSet needs at least one predicate")
        self.predicates = predicates

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CatalogPredicateSet({self.predicates!r})"

    def _compute_mask(self, catalog: ItemCatalog) -> np.ndarray:
        mask = self.predicates[0].eligible_mask(catalog).copy()
        for predicate in self.predicates[1:]:
            mask &= predicate.eligible_mask(catalog)
        return mask
